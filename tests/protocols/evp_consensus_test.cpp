// Consensus from <>P (eventually perfect detector) and registers:
// safety under ARBITRARY suspicion garbage (long imperfect prefixes),
// liveness once the detector stabilizes, for any minority of failures.
#include "processes/evp_consensus.h"

#include <gtest/gtest.h>

#include "sim/properties.h"
#include "sim/runner.h"

namespace boosting::processes {
namespace {

using sim::binaryInits;
using sim::RunConfig;
using util::Value;

struct EvPCase {
  int n;
  int stabilization;
  unsigned initMask;
  unsigned failMask;  // strictly fewer than n/2 set bits
  std::uint64_t seed;
};

class EvPConsensus : public ::testing::TestWithParam<EvPCase> {};

TEST_P(EvPConsensus, MinorityResilientConsensus) {
  const EvPCase& c = GetParam();
  EvPConsensusSpec spec;
  spec.processCount = c.n;
  spec.stabilizationSteps = c.stabilization;
  auto sys = buildEvPConsensusSystem(spec);
  RunConfig cfg;
  cfg.inits = binaryInits(c.n, c.initMask);
  cfg.scheduler = RunConfig::Sched::Random;
  cfg.seed = c.seed;
  cfg.maxSteps = 400000;
  int k = 0;
  for (int i = 0; i < c.n; ++i) {
    if ((c.failMask >> i) & 1u) cfg.failures.emplace_back(9 * (++k), i);
  }
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided())
      << "n=" << c.n << " stab=" << c.stabilization << " init=" << c.initMask
      << " fail=" << c.failMask << " reason=" << static_cast<int>(r.reason);
  auto agree = sim::checkAgreement(r);
  EXPECT_TRUE(agree) << agree.detail;
  auto valid = sim::checkValidity(r);
  EXPECT_TRUE(valid) << valid.detail;
  auto term = sim::checkModifiedTermination(r);
  EXPECT_TRUE(term) << term.detail;
}

std::vector<EvPCase> evpCases() {
  std::vector<EvPCase> cases;
  // n = 2: only f = 0 is a minority.
  for (unsigned initMask = 0; initMask < 4; ++initMask) {
    cases.push_back({2, 0, initMask, 0, initMask + 1});
    cases.push_back({2, 5, initMask, 0, initMask + 11});
  }
  // n = 3: one failure allowed; exercise all single-failure patterns and
  // both short and long imperfect prefixes.
  for (int stab : {0, 3, 12}) {
    for (unsigned initMask = 0; initMask < 8; initMask += 2) {
      for (unsigned failMask : {0u, 1u, 2u, 4u}) {
        cases.push_back({3, stab, initMask, failMask,
                         static_cast<std::uint64_t>(stab * 100 + initMask)});
      }
    }
  }
  // n = 5: two failures (still a minority).
  cases.push_back({5, 4, 0b10110, 0b00101, 7});
  cases.push_back({5, 4, 0b01001, 0b01010, 8});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EvPConsensus, ::testing::ValuesIn(evpCases()));

TEST(EvPConsensusProtocol, DeterministicRunDecides) {
  EvPConsensusSpec spec;
  spec.processCount = 3;
  spec.stabilizationSteps = 2;
  auto sys = buildEvPConsensusSystem(spec);
  RunConfig cfg;
  cfg.inits = binaryInits(3, 0b010);
  cfg.maxSteps = 400000;
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  EXPECT_TRUE(sim::checkConsensus(r));
}

TEST(EvPConsensusProtocol, SafetyHoldsEvenWithoutMajority) {
  // With n/2 or more failures the protocol may never terminate, but its
  // decisions must still satisfy agreement and validity.
  EvPConsensusSpec spec;
  spec.processCount = 3;
  spec.stabilizationSteps = 2;
  auto sys = buildEvPConsensusSystem(spec);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RunConfig cfg;
    cfg.scheduler = RunConfig::Sched::Random;
    cfg.seed = seed;
    cfg.inits = binaryInits(3, static_cast<unsigned>(seed % 8));
    cfg.failures = {{3, 0}, {9, 1}};  // 2 of 3: no correct majority
    cfg.maxSteps = 30000;
    auto r = sim::run(*sys, cfg);
    auto agree = sim::checkAgreement(r);
    EXPECT_TRUE(agree) << "seed " << seed << ": " << agree.detail;
    auto valid = sim::checkValidity(r);
    EXPECT_TRUE(valid) << "seed " << seed << ": " << valid.detail;
  }
}

TEST(EvPConsensusProtocol, LongImperfectPrefixCostsRoundsNotSafety) {
  // A large stabilization delay means rounds churn on wrong suspicions;
  // decisions still come and agree.
  EvPConsensusSpec spec;
  spec.processCount = 3;
  spec.stabilizationSteps = 25;
  spec.maxRounds = 40;
  auto sys = buildEvPConsensusSystem(spec);
  RunConfig cfg;
  cfg.inits = binaryInits(3, 0b101);
  cfg.maxSteps = 800000;
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  EXPECT_TRUE(sim::checkConsensus(r));
}

TEST(EvPConsensusProtocol, RejectsBadSpecs) {
  EvPConsensusSpec spec;
  spec.processCount = 1;
  EXPECT_THROW(buildEvPConsensusSystem(spec), std::logic_error);
  spec.processCount = 3;
  spec.maxRounds = 0;
  EXPECT_THROW(buildEvPConsensusSystem(spec), std::logic_error);
  spec.maxRounds = 100;  // would collide with the decision register id
  EXPECT_THROW(buildEvPConsensusSystem(spec), std::logic_error);
}

}  // namespace
}  // namespace boosting::processes
