// Larger-instance soak runs: the constructions keep their guarantees as
// the system grows (bounded, deterministic, still fast enough for CI).
#include <gtest/gtest.h>

#include "processes/fd_booster.h"
#include "processes/flooding_consensus.h"
#include "processes/reliable_broadcast.h"
#include "processes/rotating_consensus.h"
#include "processes/set_consensus_booster.h"
#include "sim/properties.h"
#include "sim/runner.h"

namespace boosting::processes {
namespace {

using sim::binaryInits;
using sim::RunConfig;
using util::Value;

TEST(Scale, SetConsensusBoosterTwentyProcesses) {
  SetConsensusBoosterSpec spec;
  spec.processCount = 20;
  spec.groups = 4;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = buildSetConsensusBoosterSystem(spec);
  RunConfig cfg;
  for (int i = 0; i < 20; ++i) cfg.inits.emplace_back(i, Value(i));
  // 19 failures, staggered: wait-freedom at scale.
  for (int i = 0; i < 20; ++i) {
    if (i != 13) cfg.failures.emplace_back(3 * i + 1, i);
  }
  cfg.maxSteps = 500000;
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  EXPECT_TRUE(sim::checkKSetAgreement(r, 4));
  EXPECT_TRUE(sim::checkValidity(r));
}

TEST(Scale, RotatingConsensusSixProcessesFiveFailures) {
  RotatingConsensusSpec spec;
  spec.processCount = 6;
  auto sys = buildRotatingConsensusSystem(spec);
  RunConfig cfg;
  cfg.inits = binaryInits(6, 0b101101);
  for (int i = 0; i < 5; ++i) cfg.failures.emplace_back(11 * (i + 1), i);
  cfg.maxSteps = 500000;
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  auto verdict = sim::checkConsensus(r);
  EXPECT_TRUE(verdict) << verdict.detail;
}

TEST(Scale, FDBoosterSixProcesses) {
  FDBoosterSpec spec;
  spec.processCount = 6;
  auto sys = buildFDBoosterSystem(spec);
  RunConfig cfg;
  cfg.failures = {{5, 0}, {25, 2}, {60, 5}};
  cfg.maxSteps = 60000;
  cfg.stopWhenAllDecided = false;
  auto r = sim::run(*sys, cfg);
  auto exact = sim::checkFDExactness(r);
  EXPECT_TRUE(exact) << exact.detail;
}

TEST(Scale, ReliableBroadcastEightSenders) {
  ReliableBroadcastSpec spec;
  spec.processCount = 8;
  spec.channelResilience = 7;
  auto sys = buildReliableBroadcastSystem(spec);
  RunConfig cfg;
  for (int i = 0; i < 8; ++i) cfg.inits.emplace_back(i, Value(i));
  cfg.failures = {{17, 3}};
  cfg.maxSteps = 200000;
  cfg.stopWhenAllDecided = false;
  auto r = sim::run(*sys, cfg);
  std::optional<std::set<Value>> reference;
  for (int i = 0; i < 8; ++i) {
    if (r.failed.count(i)) continue;
    auto list = deliveriesOf(r.exec, i);
    std::set<Value> delivered(list.begin(), list.end());
    if (!reference) {
      reference = delivered;
    } else {
      EXPECT_EQ(delivered, *reference) << "endpoint " << i;
    }
  }
  ASSERT_TRUE(reference.has_value());
  EXPECT_GE(reference->size(), 7u);  // everyone correct broadcast arrives
}

TEST(Scale, FloodingConsensusTenProcessesFailureFree) {
  FloodingConsensusSpec spec;
  spec.processCount = 10;
  spec.channelResilience = 9;
  auto sys = buildFloodingConsensusSystem(spec);
  RunConfig cfg;
  cfg.inits = binaryInits(10, 0b1111100000);
  cfg.maxSteps = 200000;
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  EXPECT_TRUE(sim::checkConsensus(r));
  for (const auto& [i, v] : r.decisions) {
    (void)i;
    EXPECT_EQ(v, Value(0));  // the minimum of mixed inputs
  }
}

}  // namespace
}  // namespace boosting::processes
