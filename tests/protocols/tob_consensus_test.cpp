// Consensus from totally ordered broadcast (Section 5.2's service used as a
// substrate): f-resilient when the service is, and the Theorem-9 analogue
// of the doomed relay candidate beyond f.
#include "processes/tob_consensus.h"

#include <gtest/gtest.h>

#include "sim/properties.h"
#include "sim/runner.h"

namespace boosting::processes {
namespace {

using sim::binaryInits;
using sim::RunConfig;
using util::Value;

struct TOBCase {
  int n;
  int f;
  unsigned initMask;
  unsigned failMask;
};

class TOBConsensus : public ::testing::TestWithParam<TOBCase> {};

TEST_P(TOBConsensus, FResilientConsensus) {
  const TOBCase& c = GetParam();
  TOBConsensusSpec spec;
  spec.processCount = c.n;
  spec.serviceResilience = c.f;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = buildTOBConsensusSystem(spec);
  RunConfig cfg;
  cfg.inits = binaryInits(c.n, c.initMask);
  for (int i = 0; i < c.n; ++i) {
    if ((c.failMask >> i) & 1u) cfg.failures.emplace_back(0, i);
  }
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  auto verdict = sim::checkConsensus(r);
  EXPECT_TRUE(verdict) << verdict.detail;
}

std::vector<TOBCase> tobCases() {
  std::vector<TOBCase> cases;
  for (int n : {2, 3, 4}) {
    for (int f = 0; f < n; ++f) {
      for (unsigned initMask = 0; initMask < (1u << n); initMask += 3) {
        for (unsigned failMask = 0; failMask < (1u << n); ++failMask) {
          if (__builtin_popcount(failMask) > f) continue;
          if (failMask == (1u << n) - 1) continue;
          if ((initMask ^ failMask) % 2 != 0) continue;  // bounded sample
          cases.push_back({n, f, initMask, failMask});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TOBConsensus, ::testing::ValuesIn(tobCases()));

TEST(TOBConsensusProtocol, AllDecideTheFirstDeliveredMessage) {
  TOBConsensusSpec spec;
  spec.processCount = 3;
  spec.serviceResilience = 2;
  auto sys = buildTOBConsensusSystem(spec);
  RunConfig cfg;
  cfg.inits = binaryInits(3, 0b010);
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  // Total order means identical first deliveries; the decision is common.
  const Value& d = r.decisions.begin()->second;
  for (const auto& [i, v] : r.decisions) {
    (void)i;
    EXPECT_EQ(v, d);
  }
}

TEST(TOBConsensusProtocol, RandomSchedulesAgree) {
  TOBConsensusSpec spec;
  spec.processCount = 4;
  spec.serviceResilience = 3;
  auto sys = buildTOBConsensusSystem(spec);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    RunConfig cfg;
    cfg.scheduler = RunConfig::Sched::Random;
    cfg.seed = seed;
    cfg.inits = binaryInits(4, static_cast<unsigned>(seed % 16));
    auto r = sim::run(*sys, cfg);
    ASSERT_TRUE(r.allDecided()) << "seed " << seed;
    auto verdict = sim::checkConsensus(r);
    EXPECT_TRUE(verdict) << "seed " << seed << ": " << verdict.detail;
  }
}

TEST(TOBConsensusProtocol, BeyondFLivelocksUnderAdversary) {
  TOBConsensusSpec spec;
  spec.processCount = 3;
  spec.serviceResilience = 0;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = buildTOBConsensusSystem(spec);
  RunConfig cfg;
  cfg.inits = binaryInits(3, 0b001);
  cfg.failures = {{0, 2}};  // f+1 = 1 failure silences the service
  cfg.detectLivelock = true;
  auto r = sim::run(*sys, cfg);
  EXPECT_TRUE(r.livelocked());
  EXPECT_TRUE(r.decisions.empty());
}

TEST(TOBConsensusProtocol, LateBroadcastsStillConsumed) {
  // A process that decides keeps consuming later rcv deliveries (inputs
  // are always enabled); the run must quiesce with all decided.
  TOBConsensusSpec spec;
  spec.processCount = 2;
  spec.serviceResilience = 1;
  auto sys = buildTOBConsensusSystem(spec);
  RunConfig cfg;
  cfg.inits = binaryInits(2, 0b11);
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  EXPECT_EQ(r.decisions.at(0), r.decisions.at(1));
}

}  // namespace
}  // namespace boosting::processes
