// The general Section-4 construction with k' > 1: g groups of wait-free
// k'-set-consensus services compose into wait-free (g*k')-set consensus
// (k'n = kn' with k = g*k').
#include "processes/set_consensus_booster.h"

#include <gtest/gtest.h>

#include "sim/properties.h"
#include "sim/runner.h"

namespace boosting::processes {
namespace {

using sim::RunConfig;
using util::Value;

std::vector<std::pair<int, Value>> distinctInits(int n) {
  std::vector<std::pair<int, Value>> out;
  for (int i = 0; i < n; ++i) out.emplace_back(i, Value(i));
  return out;
}

struct KPrimeCase {
  int n;
  int groups;
  int kPrime;
  unsigned failMask;
  std::uint64_t seed;
};

class KPrimeBoost : public ::testing::TestWithParam<KPrimeCase> {};

TEST_P(KPrimeBoost, ComposedKSetConsensusHolds) {
  const KPrimeCase& c = GetParam();
  SetConsensusBoosterSpec spec;
  spec.processCount = c.n;
  spec.groups = c.groups;
  spec.groupSetSize = c.kPrime;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = buildSetConsensusBoosterSystem(spec);
  RunConfig cfg;
  cfg.inits = distinctInits(c.n);
  cfg.scheduler = RunConfig::Sched::Random;
  cfg.seed = c.seed;
  for (int i = 0; i < c.n; ++i) {
    if ((c.failMask >> i) & 1u) cfg.failures.emplace_back(i + 1, i);
  }
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  const int k = boosterSetBound(spec);
  auto kset = sim::checkKSetAgreement(r, k);
  EXPECT_TRUE(kset) << kset.detail;
  auto valid = sim::checkValidity(r);
  EXPECT_TRUE(valid) << valid.detail;
}

std::vector<KPrimeCase> kprimeCases() {
  std::vector<KPrimeCase> cases;
  for (int kPrime : {2, 3}) {
    for (int groups : {1, 2}) {
      const int n = groups * 3;
      for (unsigned failMask : {0u, 1u, 0b11u, 0b10110u & ((1u << n) - 1)}) {
        if (failMask == (1u << n) - 1) continue;
        cases.push_back({n, groups, kPrime, failMask, failMask + kPrime});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, KPrimeBoost, ::testing::ValuesIn(kprimeCases()));

TEST(KPrimeBooster, SetBoundIsGroupsTimesKPrime) {
  SetConsensusBoosterSpec spec;
  spec.groups = 3;
  spec.groupSetSize = 2;
  EXPECT_EQ(boosterSetBound(spec), 6);
}

TEST(KPrimeBooster, SingleGroupTwoSetMatchesServiceSemantics) {
  // One wait-free 2-set service shared by everyone: at most 2 values even
  // with 4 distinct proposals.
  SetConsensusBoosterSpec spec;
  spec.processCount = 4;
  spec.groups = 1;
  spec.groupSetSize = 2;
  auto sys = buildSetConsensusBoosterSystem(spec);
  RunConfig cfg;
  cfg.inits = distinctInits(4);
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  std::set<Value> distinct;
  for (const auto& [i, v] : r.decisions) {
    (void)i;
    distinct.insert(v);
  }
  EXPECT_LE(distinct.size(), 2u);
}

TEST(KPrimeBooster, TwoGroupsOfTwoSetGiveFourSet) {
  SetConsensusBoosterSpec spec;
  spec.processCount = 8;
  spec.groups = 2;
  spec.groupSetSize = 2;
  auto sys = buildSetConsensusBoosterSystem(spec);
  RunConfig cfg;
  cfg.inits = distinctInits(8);
  // Wait-freedom: fail 7 of 8 processes.
  for (int i = 0; i < 8; ++i) {
    if (i != 5) cfg.failures.emplace_back(2 * i + 3, i);
  }
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  EXPECT_TRUE(sim::checkKSetAgreement(r, 4));
  EXPECT_TRUE(sim::checkValidity(r));
}

TEST(KPrimeBooster, RejectsNonPositiveKPrime) {
  SetConsensusBoosterSpec spec;
  spec.groupSetSize = 0;
  EXPECT_THROW(buildSetConsensusBoosterSystem(spec), std::logic_error);
}

}  // namespace
}  // namespace boosting::processes
