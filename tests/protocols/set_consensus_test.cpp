// Section 4: the set-consensus booster. Wait-free n-process k-set
// consensus from wait-free group consensus services -- resilience IS
// boosted (from n' - 1 to n - 1), in contrast with Theorem 2.
#include "processes/set_consensus_booster.h"

#include <gtest/gtest.h>

#include "sim/properties.h"
#include "sim/runner.h"

namespace boosting::processes {
namespace {

using sim::RunConfig;
using util::Value;

std::vector<std::pair<int, Value>> distinctInits(int n) {
  std::vector<std::pair<int, Value>> out;
  for (int i = 0; i < n; ++i) out.emplace_back(i, Value(i));
  return out;
}

struct BoostCase {
  int n;
  int groups;       // = k (k' = 1)
  unsigned failMask;  // any subset with at least one survivor
  std::uint64_t seed;
};

class SetConsensusBoost : public ::testing::TestWithParam<BoostCase> {};

TEST_P(SetConsensusBoost, WaitFreeKSetConsensus) {
  const BoostCase& c = GetParam();
  SetConsensusBoosterSpec spec;
  spec.processCount = c.n;
  spec.groups = c.groups;
  spec.policy = services::DummyPolicy::PreferDummy;  // adversarial services
  auto sys = buildSetConsensusBoosterSystem(spec);
  RunConfig cfg;
  cfg.inits = distinctInits(c.n);
  cfg.scheduler = RunConfig::Sched::Random;
  cfg.seed = c.seed;
  for (int i = 0; i < c.n; ++i) {
    if ((c.failMask >> i) & 1u) cfg.failures.emplace_back(i, i);
  }
  auto r = sim::run(*sys, cfg);
  // Wait-freedom: every correct process decides no matter how many others
  // fail (each group service is wait-free for its group).
  ASSERT_TRUE(r.allDecided()) << "n=" << c.n << " groups=" << c.groups
                              << " failMask=" << c.failMask;
  auto kset = sim::checkKSetAgreement(r, c.groups);
  EXPECT_TRUE(kset) << kset.detail;
  auto validity = sim::checkValidity(r);
  EXPECT_TRUE(validity) << validity.detail;
  auto term = sim::checkModifiedTermination(r);
  EXPECT_TRUE(term) << term.detail;
}

std::vector<BoostCase> boostCases() {
  std::vector<BoostCase> cases;
  // The paper's highlighted instance: n even, two groups of n/2 (k = 2).
  for (int n : {4, 6}) {
    for (unsigned failMask = 0; failMask < (1u << n); ++failMask) {
      if (failMask == (1u << n) - 1) continue;  // need one survivor
      if (failMask % 5 != 0) continue;          // bounded sample
      cases.push_back({n, 2, failMask, failMask + 1});
    }
  }
  // More groups: 3-set consensus for 6 processes, arbitrary failures.
  for (unsigned failMask : {0u, 1u, 0b111u, 0b11110u, 0b101010u}) {
    cases.push_back({6, 3, failMask, 99});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SetConsensusBoost,
                         ::testing::ValuesIn(boostCases()));

TEST(SetConsensusBooster, ToleratesAllButOneFailure) {
  // The headline claim: 2n processes, 2n-1 failures (wait-free), using
  // (n-1)-resilient (wait-free) n-process consensus services.
  const int n = 6;
  SetConsensusBoosterSpec spec;
  spec.processCount = n;
  spec.groups = 2;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = buildSetConsensusBoosterSystem(spec);
  RunConfig cfg;
  cfg.inits = distinctInits(n);
  // Fail everyone but P3, staggered.
  for (int i = 0; i < n; ++i) {
    if (i != 3) cfg.failures.emplace_back(static_cast<std::size_t>(2 * i), i);
  }
  cfg.detectLivelock = true;
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  EXPECT_EQ(r.decisions.count(3), 1u);
  EXPECT_TRUE(sim::checkKSetAgreement(r, 2));
}

TEST(SetConsensusBooster, AtMostGroupsManyDistinctValues) {
  // With distinct proposals everywhere, the number of distinct decisions
  // is exactly bounded by the number of groups.
  for (int groups : {1, 2, 3}) {
    SetConsensusBoosterSpec spec;
    spec.processCount = 6;
    spec.groups = groups;
    auto sys = buildSetConsensusBoosterSystem(spec);
    RunConfig cfg;
    cfg.inits = distinctInits(6);
    auto r = sim::run(*sys, cfg);
    ASSERT_TRUE(r.allDecided());
    std::set<Value> distinct;
    for (const auto& [i, v] : r.decisions) {
      (void)i;
      distinct.insert(v);
    }
    EXPECT_LE(static_cast<int>(distinct.size()), groups);
    EXPECT_GE(static_cast<int>(distinct.size()), 1);
  }
}

TEST(SetConsensusBooster, GroupOfAssignsRoundRobin) {
  SetConsensusBoosterSpec spec;
  spec.processCount = 5;
  spec.groups = 2;
  EXPECT_EQ(boosterGroupOf(spec, 0), 0);
  EXPECT_EQ(boosterGroupOf(spec, 1), 1);
  EXPECT_EQ(boosterGroupOf(spec, 2), 0);
  EXPECT_EQ(boosterGroupOf(spec, 4), 0);
}

TEST(SetConsensusBooster, GroupMembersAgreeWithinGroup) {
  SetConsensusBoosterSpec spec;
  spec.processCount = 6;
  spec.groups = 2;
  auto sys = buildSetConsensusBoosterSystem(spec);
  RunConfig cfg;
  cfg.inits = distinctInits(6);
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  // All members of a group share that group's consensus outcome.
  for (int g = 0; g < 2; ++g) {
    Value groupValue;
    bool first = true;
    for (int i = g; i < 6; i += 2) {
      if (first) {
        groupValue = r.decisions.at(i);
        first = false;
      } else {
        EXPECT_EQ(r.decisions.at(i), groupValue) << "group " << g;
      }
    }
  }
}

TEST(SetConsensusBooster, RejectsBadSpecs) {
  SetConsensusBoosterSpec spec;
  spec.processCount = 2;
  spec.groups = 3;
  EXPECT_THROW(buildSetConsensusBoosterSystem(spec), std::logic_error);
  spec.groups = 0;
  EXPECT_THROW(buildSetConsensusBoosterSystem(spec), std::logic_error);
}

TEST(SetConsensusBooster, SingleGroupIsPlainConsensusButNotBoosted) {
  // groups = 1 degenerates to the relay candidate: k = 1 is consensus and
  // the construction is wait-free only because the single service is; this
  // is the boundary case the paper's theorems are about.
  SetConsensusBoosterSpec spec;
  spec.processCount = 4;
  spec.groups = 1;
  auto sys = buildSetConsensusBoosterSystem(spec);
  RunConfig cfg;
  cfg.inits = distinctInits(4);
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  EXPECT_TRUE(sim::checkKSetAgreement(r, 1));
}

}  // namespace
}  // namespace boosting::processes
