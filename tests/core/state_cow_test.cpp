// Aliasing regression tests for the copy-on-write SystemState: a copy must
// share structure with its sibling (refcount bump, no clones) until one of
// them mutates, and mutation through any path -- applyInPlace, injectInit,
// injectFail, or the mutable part() accessor -- must detach exactly the
// touched slots and never leak into the sibling.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "analysis/bivalence.h"
#include "ioa/system.h"
#include "processes/relay_consensus.h"

using namespace boosting;

namespace {

std::unique_ptr<ioa::System> relay(int n) {
  processes::RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = 0;
  spec.addScratchRegister = false;
  return processes::buildRelayConsensusSystem(spec);
}

TEST(StateCowTest, CopySharesEverySlot) {
  auto sys = relay(3);
  ioa::SystemState a = sys->initialState();
  ioa::SystemState b = a;
  ASSERT_EQ(a.partCount(), b.partCount());
  for (std::size_t i = 0; i < a.partCount(); ++i) {
    EXPECT_TRUE(a.sharesSlotWith(b, i)) << "slot " << i;
    // Read through const refs: the non-const part() overload would detach.
    EXPECT_EQ(&std::as_const(a).part(i), &std::as_const(b).part(i))
        << "slot " << i;
  }
  EXPECT_TRUE(a.equals(b));
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(StateCowTest, InjectInitDetachesOnlyTheTouchedSlot) {
  auto sys = relay(3);
  ioa::SystemState a = sys->initialState();
  const std::size_t baseline = a.hash();
  ioa::SystemState b = a;
  sys->injectInit(b, 0, util::Value(1));

  // The sibling is untouched: state, hash, and rendering all unchanged.
  EXPECT_TRUE(a.equals(sys->initialState()));
  EXPECT_EQ(a.hash(), baseline);
  EXPECT_FALSE(a.equals(b));
  EXPECT_NE(b.hash(), baseline);

  // Only process 0's slot detached; every other slot is still shared.
  for (std::size_t i = 0; i < a.partCount(); ++i) {
    if (i == sys->slotForProcess(0)) {
      EXPECT_FALSE(a.sharesSlotWith(b, i));
    } else {
      EXPECT_TRUE(a.sharesSlotWith(b, i)) << "slot " << i;
    }
  }
}

TEST(StateCowTest, InjectFailDetachesProcessAndConnectedServices) {
  auto sys = relay(2);
  ioa::SystemState a = sys->initialState();
  ioa::SystemState b = a;
  sys->injectFail(b, 1);
  EXPECT_TRUE(a.equals(sys->initialState()));
  EXPECT_FALSE(a.sharesSlotWith(b, sys->slotForProcess(1)));
  // fail_1 fans out to every service with endpoint 1; those slots must
  // have detached too, and process 0's slot must still be shared.
  EXPECT_TRUE(a.sharesSlotWith(b, sys->slotForProcess(0)));
  for (int c : sys->serviceIds()) {
    const auto& meta = sys->serviceMeta(c);
    const bool connected =
        std::find(meta.endpoints.begin(), meta.endpoints.end(), 1) !=
        meta.endpoints.end();
    EXPECT_EQ(!a.sharesSlotWith(b, sys->slotForService(c)), connected)
        << "service " << c;
  }
}

TEST(StateCowTest, MutablePartAccessorDetaches) {
  auto sys = relay(2);
  ioa::SystemState a = sys->initialState();
  sys->injectInit(a, 0, util::Value(1));
  ioa::SystemState b = a;
  // Non-const part() routes through mutablePart: taking it alone must
  // already un-share the slot so later writes cannot leak into `a`.
  ioa::AutomatonState& slot0 = b.part(sys->slotForProcess(0));
  (void)slot0;
  EXPECT_FALSE(a.sharesSlotWith(b, sys->slotForProcess(0)));
  EXPECT_TRUE(a.equals(b));  // no actual mutation yet: still equal values
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(StateCowTest, ApplyInPlaceAfterManyCopiesKeepsSiblingsIndependent) {
  auto sys = relay(2);
  ioa::SystemState root = sys->initialState();
  sys->injectInit(root, 0, util::Value(0));
  sys->injectInit(root, 1, util::Value(1));
  const std::size_t rootHash = root.hash();

  // Fan out a chain of copies, stepping each one differently.
  std::vector<ioa::SystemState> branches(4, root);
  for (std::size_t k = 0; k < branches.size(); ++k) {
    const auto& tasks = sys->allTasks();
    std::size_t applied = 0;
    for (const auto& t : tasks) {
      if (applied > k) break;
      if (auto a = sys->enabled(branches[k], t)) {
        sys->applyInPlace(branches[k], *a);
        ++applied;
      }
    }
  }
  // The root never changed, and every branch is self-consistent.
  EXPECT_EQ(root.hash(), rootHash);
  EXPECT_EQ(root.hash(), root.fullRehash());
  for (const auto& b : branches) {
    EXPECT_EQ(b.hash(), b.fullRehash());
  }
}

TEST(StateCowTest, AssignmentSharesAndDetachesLikeCopy) {
  auto sys = relay(2);
  ioa::SystemState a = sys->initialState();
  ioa::SystemState b = sys->initialState();
  sys->injectInit(b, 0, util::Value(1));
  b = a;  // assignment re-shares
  for (std::size_t i = 0; i < a.partCount(); ++i) {
    EXPECT_TRUE(a.sharesSlotWith(b, i));
  }
  sys->injectInit(b, 1, util::Value(0));
  EXPECT_TRUE(a.equals(sys->initialState()));
}

TEST(StateCowTest, CanonicalizedStatesStayValueCorrect) {
  // Interning through a StateGraph canonicalizes slot pointers; mutating a
  // state copied out of the graph must never write through to the graph.
  auto sys = relay(2);
  analysis::StateGraph g(*sys);
  analysis::NodeId root = g.intern(analysis::canonicalInitialization(*sys, 1));
  ioa::SystemState probe = g.state(root);
  const std::size_t before = g.state(root).hash();
  sys->injectFail(probe, 0);
  EXPECT_EQ(g.state(root).hash(), before);
  EXPECT_TRUE(g.state(root).equals(analysis::canonicalInitialization(*sys, 1)));
  EXPECT_FALSE(probe.equals(g.state(root)));
}

}  // namespace
