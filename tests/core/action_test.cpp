#include "ioa/action.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "ioa/task.h"

namespace boosting::ioa {
namespace {

using util::sym;

TEST(Action, FactoriesSetFields) {
  Action a = Action::invoke(2, 100, sym("init", 1));
  EXPECT_EQ(a.kind, ActionKind::Invoke);
  EXPECT_EQ(a.endpoint, 2);
  EXPECT_EQ(a.component, 100);
  EXPECT_EQ(a.payload.tag(), "init");

  Action c = Action::compute(3, 7);
  EXPECT_EQ(c.gtask, 3);
  EXPECT_EQ(c.component, 7);
  EXPECT_EQ(c.endpoint, -1);
}

TEST(Action, ExternalClassification) {
  // External actions of the complete system: init, decide, fail.
  EXPECT_TRUE(Action::envInit(0, util::Value(1)).isExternal());
  EXPECT_TRUE(Action::envDecide(0, sym("decide", 1)).isExternal());
  EXPECT_TRUE(Action::fail(0).isExternal());
  EXPECT_FALSE(Action::invoke(0, 1, sym("read")).isExternal());
  EXPECT_FALSE(Action::respond(0, 1, util::Value(0)).isExternal());
  EXPECT_FALSE(Action::perform(0, 1).isExternal());
}

TEST(Action, EnvironmentInputs) {
  EXPECT_TRUE(Action::envInit(0, util::Value(1)).isEnvironmentInput());
  EXPECT_TRUE(Action::fail(3).isEnvironmentInput());
  EXPECT_FALSE(Action::envDecide(0, util::Value(1)).isEnvironmentInput());
}

TEST(Action, LocalControlClassification) {
  // Respond is locally controlled by the service, Invoke by the process.
  EXPECT_TRUE(Action::respond(0, 1, util::Value(0)).isServiceLocal());
  EXPECT_TRUE(Action::perform(0, 1).isServiceLocal());
  EXPECT_TRUE(Action::compute(0, 1).isServiceLocal());
  EXPECT_FALSE(Action::invoke(0, 1, sym("read")).isServiceLocal());

  EXPECT_TRUE(Action::invoke(0, 1, sym("read")).isProcessLocal());
  EXPECT_TRUE(Action::envDecide(0, util::Value(0)).isProcessLocal());
  EXPECT_TRUE(Action::procStep(0).isProcessLocal());
  EXPECT_TRUE(Action::procDummy(0).isProcessLocal());
  EXPECT_FALSE(Action::respond(0, 1, util::Value(0)).isProcessLocal());
}

TEST(Action, DummyClassification) {
  EXPECT_TRUE(Action::dummyPerform(0, 1).isDummy());
  EXPECT_TRUE(Action::dummyOutput(0, 1).isDummy());
  EXPECT_TRUE(Action::dummyCompute(0, 1).isDummy());
  EXPECT_TRUE(Action::procDummy(0).isDummy());
  EXPECT_FALSE(Action::perform(0, 1).isDummy());
  EXPECT_FALSE(Action::procStep(0).isDummy());
}

TEST(Action, EqualityIncludesPayload) {
  Action a = Action::invoke(0, 1, sym("init", 0));
  Action b = Action::invoke(0, 1, sym("init", 0));
  Action c = Action::invoke(0, 1, sym("init", 1));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, Action::invoke(1, 1, sym("init", 0)));
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Action, StrMentionsParticipants) {
  EXPECT_EQ(Action::fail(2).str(), "fail_2");
  EXPECT_NE(Action::perform(1, 9).str().find("S9"), std::string::npos);
  EXPECT_NE(Action::envDecide(1, sym("decide", 0)).str().find("decide"),
            std::string::npos);
}

TEST(TaskId, FactoriesAndOrdering) {
  TaskId p = TaskId::process(1);
  TaskId sp = TaskId::servicePerform(5, 1);
  TaskId so = TaskId::serviceOutput(5, 1);
  TaskId sc = TaskId::serviceCompute(5, 0);
  EXPECT_EQ(p.owner, TaskOwner::Process);
  EXPECT_NE(sp, so);
  EXPECT_LT(p, sp);   // Process < ServicePerform in owner order
  EXPECT_LT(sp, so);  // ServicePerform < ServiceOutput
  EXPECT_LT(so, sc);
  EXPECT_EQ(sp, TaskId::servicePerform(5, 1));
}

TEST(TaskId, HashDistinguishesTasks) {
  std::unordered_set<TaskId> set;
  set.insert(TaskId::process(0));
  set.insert(TaskId::process(1));
  set.insert(TaskId::servicePerform(0, 0));
  set.insert(TaskId::serviceOutput(0, 0));
  set.insert(TaskId::serviceCompute(0, 0));
  set.insert(TaskId::process(0));  // dup
  EXPECT_EQ(set.size(), 5u);
}

TEST(TaskId, StrIsInformative) {
  EXPECT_EQ(TaskId::process(3).str(), "task(P3)");
  EXPECT_NE(TaskId::servicePerform(7, 2).str().find("perform"),
            std::string::npos);
  EXPECT_NE(TaskId::serviceCompute(7, 1).str().find("compute"),
            std::string::npos);
}

}  // namespace
}  // namespace boosting::ioa
