#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace boosting::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.nextBelow(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.nextBelow(1), 0u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    auto v = r.nextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit over 500 draws
}

TEST(Rng, CoversSmallRangeUniformlyEnough) {
  Rng r(13);
  int counts[4] = {0, 0, 0, 0};
  const int draws = 4000;
  for (int i = 0; i < draws; ++i) ++counts[r.nextBelow(4)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 4 - draws / 10);
    EXPECT_LT(c, draws / 4 + draws / 10);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0, 10));
    EXPECT_TRUE(r.chance(10, 10));
  }
}

}  // namespace
}  // namespace boosting::util
