// Trace serialization: value syntax round-trips, execution round-trips,
// witness files replay on a fresh system.
#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include "analysis/adversary.h"
#include "processes/relay_consensus.h"
#include "sim/runner.h"

namespace boosting::sim {
namespace {

using ioa::Action;
using util::sym;
using util::Value;

void roundTrip(const Value& v) {
  auto parsed = parseValue(renderValue(v));
  ASSERT_TRUE(parsed.has_value()) << renderValue(v);
  EXPECT_EQ(*parsed, v) << renderValue(v);
}

TEST(TraceIO, ValueRoundTrips) {
  roundTrip(Value::nil());
  roundTrip(Value(0));
  roundTrip(Value(-42));
  roundTrip(Value(std::int64_t{1234567890123}));
  roundTrip(Value("read"));
  roundTrip(Value("test&set"));
  roundTrip(Value("with space"));
  roundTrip(Value("quote\"and\\slash"));
  roundTrip(Value(""));
  roundTrip(sym("decide", 1));
  roundTrip(sym("rcv", Value("m"), 2));
  roundTrip(Value::list({}));
  roundTrip(Value::list({Value::list({Value(1)}), Value::nil(),
                         Value("x y")}));
  roundTrip(Value::set({Value(3), Value(1)}));
}

TEST(TraceIO, NumericEdgeTokens) {
  // "nil" parses as nil, "-" alone as a symbol-free failure, digits as int.
  EXPECT_EQ(*parseValue("nil"), Value::nil());
  EXPECT_EQ(*parseValue("7"), Value(7));
  EXPECT_EQ(*parseValue("(a -1)"), sym("a", -1));
}

TEST(TraceIO, ParseRejectsMalformedValues) {
  EXPECT_FALSE(parseValue("(unclosed").has_value());
  EXPECT_FALSE(parseValue("\"unterminated").has_value());
  EXPECT_FALSE(parseValue("a b").has_value());  // trailing garbage
  EXPECT_FALSE(parseValue("").has_value());
}

TEST(TraceIO, ExecutionRoundTrips) {
  ioa::Execution e;
  e.append(Action::envInit(0, Value(1)));
  e.append(Action::invoke(0, 100, sym("init", 1)));
  e.append(Action::perform(0, 100));
  e.append(Action::respond(0, 100, sym("decide", 1)));
  e.append(Action::envDecide(0, sym("decide", 1)));
  e.append(Action::fail(1));
  e.append(Action::compute(2, 400));
  e.append(Action::procStep(1, Value("note")));

  auto parsed = parseExecution(renderExecution(e));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), e.size());
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_EQ(parsed->actions()[i], e.actions()[i]) << "action " << i;
  }
}

TEST(TraceIO, CommentsAndBlanksSkipped) {
  const std::string text =
      "# a comment\n\n   \nfail 2 -1 -1 nil\n# another\n";
  auto parsed = parseExecution(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->actions()[0], Action::fail(2));
}

TEST(TraceIO, ParseRejectsUnknownKinds) {
  EXPECT_FALSE(parseExecution("teleport 0 1 2 nil").has_value());
  EXPECT_FALSE(parseExecution("fail x -1 -1 nil").has_value());
}

TEST(TraceIO, ParseErrorReportsLineColumnAndToken) {
  // The bad kind sits on line 3 (after a comment and a good line), at
  // column 1.
  const std::string text =
      "# header\n"
      "fail 2 -1 -1 nil\n"
      "frobnicate 0 1 2 nil\n";
  auto result = parseExecutionDetailed(text);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error.line, 3u);
  EXPECT_EQ(result.error.column, 1u);
  EXPECT_EQ(result.error.token, "frobnicate");
  EXPECT_EQ(result.error.message, "unknown action kind");
  EXPECT_EQ(result.error.str(),
            "line 3, column 1: unknown action kind 'frobnicate'");
}

TEST(TraceIO, ParseErrorOnNonIntegerField) {
  auto result = parseExecutionDetailed("fail x -1 -1 nil");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error.line, 1u);
  EXPECT_EQ(result.error.column, 6u);  // "x" starts at column 6
  EXPECT_EQ(result.error.token, "x");
  EXPECT_NE(result.error.message.find("endpoint"), std::string::npos);

  // A missing field names the first absent one.
  auto missing = parseExecutionDetailed("fail 2");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error.message.find("component"), std::string::npos);
}

TEST(TraceIO, ParseErrorOnBadPayload) {
  auto result = parseExecutionDetailed("invoke 0 100 -1 (unclosed");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error.line, 1u);
  EXPECT_GT(result.error.column, 16u);  // inside the payload, not the header
  EXPECT_NE(result.error.message.find("bad payload"), std::string::npos);
}

TEST(TraceIO, EmptyTraceDistinguishedFromParseError) {
  // Empty and comment-only documents are VALID zero-action executions...
  for (const char* text : {"", "# only a comment\n", "\n  \n# c\n"}) {
    auto result = parseExecutionDetailed(text);
    ASSERT_TRUE(result.ok()) << '"' << text << '"';
    EXPECT_EQ(result.execution->size(), 0u);
    EXPECT_EQ(result.error.line, 0u);  // no error recorded
    EXPECT_EQ(result.error.str(), "no error");
  }
  // ...while garbage is a hard error, not an empty execution.
  auto bad = parseExecutionDetailed("garbage\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error.line, 1u);
}

TEST(TraceIO, ParseValueReportsColumn) {
  TraceParseError err;
  EXPECT_FALSE(parseValue("(a b", &err).has_value());
  EXPECT_EQ(err.line, 1u);
  EXPECT_EQ(err.message, "malformed value");

  TraceParseError trailing;
  EXPECT_FALSE(parseValue("7 junk", &trailing).has_value());
  EXPECT_EQ(trailing.line, 1u);
  EXPECT_EQ(trailing.column, 3u);
  EXPECT_EQ(trailing.token, "junk");
  EXPECT_EQ(trailing.message, "trailing input after value");
}

TEST(TraceIO, AdversaryWitnessRoundTripsAndReplays) {
  processes::RelaySystemSpec spec;
  spec.processCount = 2;
  spec.objectResilience = 0;
  spec.addScratchRegister = false;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildRelayConsensusSystem(spec);
  analysis::AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analysis::analyzeConsensusCandidate(*sys, cfg);
  ASSERT_EQ(report.verdict,
            analysis::AdversaryReport::Verdict::TerminationViolation);

  // Serialize the witness, parse it back, replay on a fresh system.
  auto parsed = parseExecution(renderExecution(report.witness));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), report.witness.size());
  ioa::SystemState s = sys->initialState();
  for (const Action& a : parsed->actions()) {
    ASSERT_NO_THROW(sys->applyInPlace(s, a)) << a.str();
  }
  EXPECT_EQ(parsed->failedEndpoints(), report.witnessFailures);
}

}  // namespace
}  // namespace boosting::sim
