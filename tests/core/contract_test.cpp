// The model contract (determinism, value semantics, input-enabledness,
// task ownership) checked by random walk over EVERY system family in the
// repository, across seeds.
#include <gtest/gtest.h>

#include "compose/system_as_service.h"
#include "processes/evp_consensus.h"
#include "processes/fd_booster.h"
#include "processes/flooding_consensus.h"
#include "processes/relay_consensus.h"
#include "processes/reliable_broadcast.h"
#include "processes/rotating_consensus.h"
#include "processes/set_consensus_booster.h"
#include "processes/tob_consensus.h"
#include "support/automaton_contract.h"

namespace boosting::testing {
namespace {

class Contract : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Contract, RelaySystem) {
  processes::RelaySystemSpec spec;
  spec.processCount = 3;
  spec.objectResilience = 1;
  checkSystemContract(*processes::buildRelayConsensusSystem(spec), GetParam(),
                      50);
}

TEST_P(Contract, RelaySystemPreferDummy) {
  processes::RelaySystemSpec spec;
  spec.processCount = 2;
  spec.objectResilience = 0;
  spec.policy = services::DummyPolicy::PreferDummy;
  checkSystemContract(*processes::buildRelayConsensusSystem(spec), GetParam(),
                      50);
}

TEST_P(Contract, BridgeSystem) {
  processes::BridgeSystemSpec spec;
  checkSystemContract(*processes::buildBridgeConsensusSystem(spec), GetParam(),
                      50);
}

TEST_P(Contract, TOBSystem) {
  processes::TOBConsensusSpec spec;
  spec.processCount = 3;
  spec.serviceResilience = 1;
  checkSystemContract(*processes::buildTOBConsensusSystem(spec), GetParam(),
                      50);
}

TEST_P(Contract, SetConsensusBooster) {
  processes::SetConsensusBoosterSpec spec;
  spec.processCount = 4;
  spec.groups = 2;
  checkSystemContract(*processes::buildSetConsensusBoosterSystem(spec),
                      GetParam(), 50);
}

TEST_P(Contract, FDBooster) {
  processes::FDBoosterSpec spec;
  spec.processCount = 3;
  checkSystemContract(*processes::buildFDBoosterSystem(spec), GetParam(), 40);
}

TEST_P(Contract, RotatingConsensus) {
  processes::RotatingConsensusSpec spec;
  spec.processCount = 3;
  checkSystemContract(*processes::buildRotatingConsensusSystem(spec),
                      GetParam(), 40);
}

TEST_P(Contract, SingleFDConsensus) {
  processes::SingleFDConsensusSpec spec;
  spec.processCount = 3;
  spec.fdResilience = 1;
  checkSystemContract(*processes::buildSingleFDRotatingConsensusSystem(spec),
                      GetParam(), 40);
}

TEST_P(Contract, EvPConsensus) {
  processes::EvPConsensusSpec spec;
  spec.processCount = 3;
  spec.stabilizationSteps = 3;
  spec.maxRounds = 4;  // small register bank keeps the walk cheap
  checkSystemContract(*processes::buildEvPConsensusSystem(spec), GetParam(),
                      30);
}

TEST_P(Contract, FloodingConsensus) {
  processes::FloodingConsensusSpec spec;
  spec.processCount = 3;
  spec.channelResilience = 1;
  checkSystemContract(*processes::buildFloodingConsensusSystem(spec),
                      GetParam(), 50);
}

TEST_P(Contract, ReliableBroadcast) {
  processes::ReliableBroadcastSpec spec;
  spec.processCount = 3;
  checkSystemContract(*processes::buildReliableBroadcastSystem(spec),
                      GetParam(), 50);
}

TEST_P(Contract, WrappedSystemService) {
  processes::RotatingConsensusSpec innerSpec;
  innerSpec.processCount = 2;
  auto inner = std::shared_ptr<const ioa::System>(
      processes::buildRotatingConsensusSystem(innerSpec));
  auto outer = std::make_unique<ioa::System>();
  for (int i = 0; i < 2; ++i) {
    outer->addProcess(
        std::make_shared<processes::RelayConsensusProcess>(i, 1000));
  }
  auto wrapped =
      std::make_shared<compose::SystemAsService>(inner, 1000, 1, true);
  outer->addService(wrapped, wrapped->meta());
  checkSystemContract(*outer, GetParam(), 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Contract,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace boosting::testing
