// Execution record helpers: trace projection, decision/init extraction,
// decision-value decoding, rendering.
#include "ioa/execution.h"

#include <gtest/gtest.h>

namespace boosting::ioa {
namespace {

using util::sym;
using util::Value;

Execution sample() {
  Execution e;
  e.append(Action::envInit(0, Value(1)));
  e.append(Action::envInit(1, Value(0)));
  e.append(Action::invoke(0, 7, sym("init", 1)));
  e.append(Action::perform(0, 7));
  e.append(Action::respond(0, 7, sym("decide", 1)));
  e.append(Action::envDecide(0, sym("decide", 1)));
  e.append(Action::fail(1));
  return e;
}

TEST(Execution, TraceKeepsOnlyExternalActions) {
  auto trace = sample().trace();
  ASSERT_EQ(trace.size(), 4u);  // 2 inits, 1 decide, 1 fail
  EXPECT_EQ(trace[0].kind, ActionKind::EnvInit);
  EXPECT_EQ(trace[2].kind, ActionKind::EnvDecide);
  EXPECT_EQ(trace[3].kind, ActionKind::Fail);
}

TEST(Execution, DecisionsExtractFirstPerEndpoint) {
  Execution e = sample();
  e.append(Action::envDecide(0, sym("decide", 0)));  // later, ignored
  auto d = e.decisions();
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.at(0), Value(1));
}

TEST(Execution, InitsUnwrapBothConventions) {
  Execution e;
  e.append(Action::envInit(0, Value(1)));            // raw value
  e.append(Action::envInit(1, sym("init", 0)));      // tagged record
  auto ins = e.inits();
  EXPECT_EQ(ins.at(0), Value(1));
  EXPECT_EQ(ins.at(1), Value(0));
}

TEST(Execution, FailedEndpointsCollected) {
  Execution e = sample();
  e.append(Action::fail(0));
  EXPECT_EQ(e.failedEndpoints(), (std::set<int>{0, 1}));
}

TEST(Execution, ContainsDecisionMatchesValue) {
  Execution e = sample();
  EXPECT_TRUE(e.containsDecision(Value(1)));
  EXPECT_FALSE(e.containsDecision(Value(0)));
}

TEST(Execution, DecisionValueDecoding) {
  EXPECT_EQ(*decisionValue(Action::envDecide(0, sym("decide", 7))), Value(7));
  // Non-"decide" payloads pass through whole (failure-detector outputs).
  auto suspect = sym("suspect", Value::emptySet());
  EXPECT_EQ(*decisionValue(Action::envDecide(0, suspect)), suspect);
  EXPECT_FALSE(decisionValue(Action::fail(0)).has_value());
  EXPECT_FALSE(decisionValue(Action::respond(0, 1, sym("decide", 7))));
}

TEST(Execution, StrHonorsLimit) {
  Execution e = sample();
  std::string full = e.str();
  std::string limited = e.str(2);
  EXPECT_LT(limited.size(), full.size());
  EXPECT_NE(limited.find("more)"), std::string::npos);
  EXPECT_NE(full.find("decide"), std::string::npos);
}

TEST(Execution, EmptyBehaviour) {
  Execution e;
  EXPECT_TRUE(e.empty());
  EXPECT_TRUE(e.trace().empty());
  EXPECT_TRUE(e.decisions().empty());
  EXPECT_TRUE(e.inits().empty());
  EXPECT_TRUE(e.failedEndpoints().empty());
  EXPECT_EQ(e.str(), "");
}

}  // namespace
}  // namespace boosting::ioa
