// Property-checker unit tests on synthetic run records: each checker's
// accept and reject behaviour, with readable violation details.
#include "sim/properties.h"

#include <gtest/gtest.h>

namespace boosting::sim {
namespace {

using ioa::Action;
using util::sym;
using util::Value;

RunResult makeRun(std::vector<Action> actions,
                  std::map<int, Value> decisions, std::set<int> failed) {
  RunResult r;
  for (Action& a : actions) r.exec.append(std::move(a));
  r.decisions = std::move(decisions);
  r.failed = std::move(failed);
  r.reason = RunResult::Reason::AllDecided;
  return r;
}

TEST(Properties, AgreementAccepts) {
  auto r = makeRun({}, {{0, Value(1)}, {1, Value(1)}}, {});
  EXPECT_TRUE(checkAgreement(r));
}

TEST(Properties, AgreementRejectsWithDetail) {
  auto r = makeRun({}, {{0, Value(1)}, {2, Value(0)}}, {});
  auto v = checkAgreement(r);
  EXPECT_FALSE(v);
  EXPECT_NE(v.detail.find("P0"), std::string::npos);
  EXPECT_NE(v.detail.find("P2"), std::string::npos);
}

TEST(Properties, KSetAgreementBoundsDistinctValues) {
  auto r = makeRun({}, {{0, Value(1)}, {1, Value(2)}, {2, Value(3)}}, {});
  EXPECT_TRUE(checkKSetAgreement(r, 3));
  EXPECT_FALSE(checkKSetAgreement(r, 2));
}

TEST(Properties, ValidityChecksAgainstInits) {
  auto r = makeRun({Action::envInit(0, Value(1)), Action::envInit(1, Value(0))},
                   {{0, Value(1)}}, {});
  EXPECT_TRUE(checkValidity(r));
  auto bad = makeRun({Action::envInit(0, Value(1))}, {{0, Value(9)}}, {});
  auto v = checkValidity(bad);
  EXPECT_FALSE(v);
  EXPECT_NE(v.detail.find("validity"), std::string::npos);
}

TEST(Properties, TerminationExemptsFailedProcesses) {
  auto r = makeRun({Action::envInit(0, Value(1)), Action::envInit(1, Value(0))},
                   {{0, Value(1)}}, {1});
  EXPECT_TRUE(checkModifiedTermination(r));
  auto bad = makeRun(
      {Action::envInit(0, Value(1)), Action::envInit(1, Value(0))},
      {{0, Value(1)}}, {});
  EXPECT_FALSE(checkModifiedTermination(bad));
}

TEST(Properties, TerminationIgnoresUninitialized) {
  // A process with no input need not decide (modified termination).
  auto r = makeRun({Action::envInit(0, Value(1))}, {{0, Value(1)}}, {});
  EXPECT_TRUE(checkModifiedTermination(r));
}

TEST(Properties, ConsensusCombinesAllThree) {
  auto good = makeRun(
      {Action::envInit(0, Value(1)), Action::envInit(1, Value(1))},
      {{0, Value(1)}, {1, Value(1)}}, {});
  EXPECT_TRUE(checkConsensus(good));
}

TEST(Properties, FDAccuracyRejectsAliveSuspicions) {
  auto r = makeRun(
      {Action::envDecide(0, sym("suspect", Value::set({Value(1)})))}, {}, {});
  auto v = checkFDAccuracy(r);
  EXPECT_FALSE(v);  // endpoint 1 never failed
  auto ok = makeRun(
      {Action::fail(1),
       Action::envDecide(0, sym("suspect", Value::set({Value(1)})))},
      {}, {1});
  EXPECT_TRUE(checkFDAccuracy(ok));
}

TEST(Properties, FDExactnessNeedsCompleteFinalOutputs) {
  auto incomplete = makeRun(
      {Action::fail(1), Action::envDecide(0, sym("suspect", Value::emptySet()))},
      {}, {1});
  auto v = checkFDExactness(incomplete);
  EXPECT_FALSE(v);
  EXPECT_NE(v.detail.find("completeness"), std::string::npos);
}

TEST(Properties, WellFormedAcceptsBalancedTrace) {
  ioa::Execution e;
  e.append(Action::invoke(0, 5, sym("read")));
  e.append(Action::respond(0, 5, Value(1)));
  e.append(Action::invoke(0, 5, sym("read")));
  EXPECT_TRUE(checkAtomicServiceWellFormed(e, 5));
}

TEST(Properties, WellFormedRejectsSpontaneousResponse) {
  ioa::Execution e;
  e.append(Action::respond(0, 5, Value(1)));
  auto v = checkAtomicServiceWellFormed(e, 5);
  EXPECT_FALSE(v);
  EXPECT_NE(v.detail.find("outstanding"), std::string::npos);
}

TEST(Properties, WellFormedRejectsOverAnswering) {
  ioa::Execution e;
  e.append(Action::invoke(0, 5, sym("read")));
  e.append(Action::respond(0, 5, Value(1)));
  e.append(Action::respond(0, 5, Value(1)));
  EXPECT_FALSE(checkAtomicServiceWellFormed(e, 5));
}

TEST(Properties, WellFormedPerEndpointIndependent) {
  ioa::Execution e;
  e.append(Action::invoke(0, 5, sym("read")));
  e.append(Action::invoke(1, 5, sym("read")));
  e.append(Action::respond(1, 5, Value(1)));
  e.append(Action::respond(0, 5, Value(1)));
  EXPECT_TRUE(checkAtomicServiceWellFormed(e, 5));
}

TEST(Properties, WellFormedIgnoresOtherServices) {
  ioa::Execution e;
  e.append(Action::respond(0, 9, Value(1)));  // different service
  EXPECT_TRUE(checkAtomicServiceWellFormed(e, 5));
}

}  // namespace
}  // namespace boosting::sim
