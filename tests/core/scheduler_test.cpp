// Scheduler semantics: determinism, fairness, reproducibility, and the
// runner's input-first / failure-injection / livelock machinery.
#include "ioa/scheduler.h"

#include <gtest/gtest.h>

#include "processes/relay_consensus.h"
#include "sim/properties.h"
#include "sim/runner.h"

namespace boosting::ioa {
namespace {

using processes::buildRelayConsensusSystem;
using processes::RelaySystemSpec;
using util::Value;

RelaySystemSpec spec(int n, int f) {
  RelaySystemSpec s;
  s.processCount = n;
  s.objectResilience = f;
  return s;
}

TEST(RoundRobinScheduler, DeterministicRuns) {
  auto sys = buildRelayConsensusSystem(spec(3, 1));
  sim::RunConfig cfg;
  cfg.inits = sim::binaryInits(3, 0b101);
  auto r1 = sim::run(*sys, cfg);
  auto r2 = sim::run(*sys, cfg);
  ASSERT_EQ(r1.exec.size(), r2.exec.size());
  for (std::size_t i = 0; i < r1.exec.size(); ++i) {
    EXPECT_EQ(r1.exec.actions()[i], r2.exec.actions()[i]);
  }
  EXPECT_TRUE(r1.finalState.equals(r2.finalState));
}

TEST(RoundRobinScheduler, RelayConsensusTerminates) {
  auto sys = buildRelayConsensusSystem(spec(3, 1));
  sim::RunConfig cfg;
  cfg.inits = sim::binaryInits(3, 0b011);
  auto r = sim::run(*sys, cfg);
  EXPECT_TRUE(r.allDecided());
  EXPECT_EQ(r.decisions.size(), 3u);
  EXPECT_TRUE(sim::checkConsensus(r));
}

TEST(RoundRobinScheduler, CursorAdvances) {
  auto sys = buildRelayConsensusSystem(spec(2, 0));
  RoundRobinScheduler rr(*sys);
  SystemState s = sys->initialState();
  EXPECT_EQ(rr.cursor(), 0u);
  rr.step(s);
  EXPECT_NE(rr.cursor(), 0u);
}

TEST(RandomScheduler, SeededReproducibility) {
  auto sys = buildRelayConsensusSystem(spec(3, 2));
  sim::RunConfig cfg;
  cfg.scheduler = sim::RunConfig::Sched::Random;
  cfg.seed = 42;
  cfg.inits = sim::binaryInits(3, 0b110);
  auto r1 = sim::run(*sys, cfg);
  auto r2 = sim::run(*sys, cfg);
  ASSERT_EQ(r1.exec.size(), r2.exec.size());
  for (std::size_t i = 0; i < r1.exec.size(); ++i) {
    EXPECT_EQ(r1.exec.actions()[i], r2.exec.actions()[i]);
  }
}

TEST(RandomScheduler, DifferentSeedsUsuallyDiffer) {
  auto sys = buildRelayConsensusSystem(spec(3, 2));
  sim::RunConfig a, b;
  a.scheduler = b.scheduler = sim::RunConfig::Sched::Random;
  a.seed = 1;
  b.seed = 2;
  a.inits = b.inits = sim::binaryInits(3, 0b010);
  auto ra = sim::run(*sys, a);
  auto rb = sim::run(*sys, b);
  // Both decide (wait-free object), decisions agree per seed.
  EXPECT_TRUE(ra.allDecided());
  EXPECT_TRUE(rb.allDecided());
  EXPECT_TRUE(sim::checkConsensus(ra));
  EXPECT_TRUE(sim::checkConsensus(rb));
}

TEST(RandomScheduler, ManySeedsAllSatisfyConsensus) {
  auto sys = buildRelayConsensusSystem(spec(4, 3));
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::RunConfig cfg;
    cfg.scheduler = sim::RunConfig::Sched::Random;
    cfg.seed = seed;
    cfg.inits = sim::binaryInits(4, static_cast<unsigned>(seed * 7 % 16));
    auto r = sim::run(*sys, cfg);
    ASSERT_TRUE(r.allDecided()) << "seed " << seed;
    ASSERT_TRUE(sim::checkConsensus(r)) << "seed " << seed;
  }
}

TEST(Runner, InputFirstPrefix) {
  auto sys = buildRelayConsensusSystem(spec(3, 1));
  sim::RunConfig cfg;
  cfg.inits = sim::binaryInits(3, 0b111);
  auto r = sim::run(*sys, cfg);
  // The first three actions are the init inputs (input-first executions,
  // Section 3.2).
  ASSERT_GE(r.exec.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(r.exec.actions()[static_cast<std::size_t>(i)].kind,
              ActionKind::EnvInit);
  }
}

TEST(Runner, FailureWithinResilienceStillDecides) {
  auto sys = buildRelayConsensusSystem(spec(3, 1));
  sim::RunConfig cfg;
  cfg.inits = sim::binaryInits(3, 0b001);
  cfg.failures = {{0, 2}};  // fail P2 immediately; f = 1 tolerated
  auto r = sim::run(*sys, cfg);
  EXPECT_TRUE(r.allDecided());  // correct processes 0, 1 decide
  EXPECT_TRUE(sim::checkAgreement(r));
  EXPECT_TRUE(sim::checkValidity(r));
  EXPECT_TRUE(sim::checkModifiedTermination(r));
  EXPECT_EQ(r.failed, (std::set<int>{2}));
}

TEST(Runner, LivelockDetectedWhenObjectSilenced) {
  // f = 0 object, PreferDummy, one failure: the object may go silent and
  // the survivors spin forever -- a certified fair livelock.
  RelaySystemSpec s = spec(2, 0);
  s.policy = services::DummyPolicy::PreferDummy;
  auto sys = buildRelayConsensusSystem(s);
  sim::RunConfig cfg;
  cfg.inits = sim::binaryInits(2, 0b01);
  cfg.failures = {{0, 1}};
  cfg.detectLivelock = true;
  auto r = sim::run(*sys, cfg);
  EXPECT_TRUE(r.livelocked());
  EXPECT_TRUE(r.decisions.empty());
}

TEST(Runner, PreferRealKeepsRespondingAfterExcessFailures) {
  // Same scenario under the benign policy: the object still answers P0.
  auto sys = buildRelayConsensusSystem(spec(2, 0));
  sim::RunConfig cfg;
  cfg.inits = sim::binaryInits(2, 0b01);
  cfg.failures = {{0, 1}};
  auto r = sim::run(*sys, cfg);
  EXPECT_TRUE(r.allDecided());
  // binaryInits(2, 0b01): P0 proposed 1; with P1 silent, P0's own value
  // wins the object.
  EXPECT_EQ(r.decisions.at(0), Value(1));
}

TEST(Runner, CustomStopPredicate) {
  auto sys = buildRelayConsensusSystem(spec(3, 2));
  sim::RunConfig cfg;
  cfg.inits = sim::binaryInits(3, 0b000);
  cfg.stopWhenAllDecided = false;
  cfg.stop = [](const SystemState&, const Execution& e) {
    return !e.empty() && e.actions().back().kind == ActionKind::EnvDecide;
  };
  auto r = sim::run(*sys, cfg);
  EXPECT_EQ(r.reason, sim::RunResult::Reason::Custom);
  EXPECT_EQ(r.decisions.size(), 1u);
}

TEST(Runner, StepLimitRespected) {
  auto sys = buildRelayConsensusSystem(spec(3, 2));
  sim::RunConfig cfg;  // no inits: processes dummy-step forever
  cfg.maxSteps = 57;
  auto r = sim::run(*sys, cfg);
  EXPECT_EQ(r.reason, sim::RunResult::Reason::StepLimit);
  EXPECT_EQ(r.steps, 57u);
}

TEST(ReplayScheduler, ReproducesARecordedRunExactly) {
  // Executions are determined by their task sequences (Section 3.1):
  // replaying a run's tasks from the same start reproduces every action.
  auto sys = buildRelayConsensusSystem(spec(3, 1));
  sim::RunConfig cfg;
  cfg.inits = sim::binaryInits(3, 0b101);
  auto recorded = sim::run(*sys, cfg);

  SystemState s = sys->initialState();
  for (const auto& [endpoint, v] : cfg.inits) sys->injectInit(s, endpoint, v);
  ReplayScheduler replay(*sys, recorded.tasks);
  std::vector<Action> actions;
  while (auto step = replay.step(s)) actions.push_back(step->action);
  EXPECT_TRUE(replay.finished());
  // Compare against the recorded locally controlled actions.
  std::vector<Action> expected;
  for (const Action& a : recorded.exec.actions()) {
    if (!a.isEnvironmentInput()) expected.push_back(a);
  }
  ASSERT_EQ(actions.size(), expected.size());
  for (std::size_t i = 0; i < actions.size(); ++i) {
    EXPECT_EQ(actions[i], expected[i]) << "at step " << i;
  }
  EXPECT_TRUE(s.equals(recorded.finalState));
}

TEST(ReplayScheduler, StopsOnDivergence) {
  auto sys = buildRelayConsensusSystem(spec(2, 0));
  SystemState s = sys->initialState();
  // Without inits, a service perform task is not applicable: replay stops
  // immediately and reports its position.
  ReplayScheduler replay(*sys, {TaskId::servicePerform(100, 0)});
  EXPECT_FALSE(replay.step(s).has_value());
  EXPECT_EQ(replay.position(), 0u);
  EXPECT_FALSE(replay.finished());
}

TEST(ReplayScheduler, EmptyScheduleFinishesImmediately) {
  auto sys = buildRelayConsensusSystem(spec(2, 0));
  SystemState s = sys->initialState();
  ReplayScheduler replay(*sys, {});
  EXPECT_FALSE(replay.step(s).has_value());
  EXPECT_TRUE(replay.finished());
}

TEST(Runner, TaskRecordingAlignsWithLocalActions) {
  auto sys = buildRelayConsensusSystem(spec(2, 1));
  sim::RunConfig cfg;
  cfg.inits = sim::binaryInits(2, 0b10);
  auto r = sim::run(*sys, cfg);
  std::size_t localActions = 0;
  for (const Action& a : r.exec.actions()) {
    if (!a.isEnvironmentInput()) ++localActions;
  }
  EXPECT_EQ(localActions, r.tasks.size());
}

}  // namespace
}  // namespace boosting::ioa
