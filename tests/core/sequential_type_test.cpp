// Sequential types (Section 2.1.2): transition relations of the built-ins,
// totality, determinism and the WLOG determinization of Section 3.1.
#include "types/sequential_type.h"

#include <gtest/gtest.h>

#include "types/builtin_types.h"

namespace boosting::types {
namespace {

using util::sym;

TEST(RegisterType, ReadReturnsCurrentValue) {
  auto t = registerType(Value(7));
  auto [resp, next] = t.delta(sym("read"), t.initialValue());
  EXPECT_EQ(resp, Value(7));
  EXPECT_EQ(next, Value(7));
}

TEST(RegisterType, WriteReplacesValue) {
  auto t = registerType();
  auto [ack, v1] = t.delta(sym("write", 3), t.initialValue());
  EXPECT_EQ(ack, sym("ack"));
  EXPECT_EQ(v1, Value(3));
  auto [r, v2] = t.delta(sym("read"), v1);
  EXPECT_EQ(r, Value(3));
  EXPECT_EQ(v2, Value(3));
}

TEST(RegisterType, UnknownInvocationThrows) {
  auto t = registerType();
  EXPECT_THROW(t.delta(sym("bogus"), t.initialValue()), std::logic_error);
}

TEST(ConsensusType, FirstInitWinsAndSticks) {
  auto t = binaryConsensusType();
  auto [d1, v1] = t.delta(sym("init", 1), t.initialValue());
  EXPECT_EQ(d1, sym("decide", 1));
  auto [d2, v2] = t.delta(sym("init", 0), v1);
  EXPECT_EQ(d2, sym("decide", 1));  // the first value is remembered
  EXPECT_EQ(v2, v1);
}

TEST(ConsensusType, IsDeterministic) {
  auto t = binaryConsensusType();
  EXPECT_TRUE(t.deterministic);
  EXPECT_EQ(t.initialValues.size(), 1u);
  EXPECT_EQ(t.deltaAll(sym("init", 0), t.initialValue()).size(), 1u);
}

TEST(KSetConsensusType, RemembersFirstKValues) {
  auto t = kSetConsensusType(2);
  EXPECT_FALSE(t.deterministic);
  auto [d1, v1] = t.delta(sym("init", 5), t.initialValue());
  EXPECT_EQ(d1, sym("decide", 5));
  auto [d2, v2] = t.delta(sym("init", 3), v1);
  EXPECT_EQ(d2, sym("decide", 3));  // |W| < k: echo own value first
  // Third proposer: W full, options are exactly the remembered values.
  auto options = t.deltaAll(sym("init", 9), v2);
  ASSERT_EQ(options.size(), 2u);
  for (const auto& [resp, next] : options) {
    EXPECT_EQ(next, v2);  // W unchanged at capacity
    EXPECT_TRUE(resp == sym("decide", 3) || resp == sym("decide", 5));
  }
}

TEST(KSetConsensusType, NondeterministicChoicesBelowCapacity) {
  auto t = kSetConsensusType(2);
  auto [d1, v1] = t.delta(sym("init", 5), t.initialValue());
  (void)d1;
  // Second proposer may be told its own value or the remembered one.
  auto options = t.deltaAll(sym("init", 3), v1);
  ASSERT_EQ(options.size(), 2u);
  EXPECT_EQ(options[0].first, sym("decide", 3));
  EXPECT_EQ(options[1].first, sym("decide", 5));
}

TEST(KSetConsensusType, KEqualsOneBehavesLikeConsensus) {
  auto t = kSetConsensusType(1);
  auto [d1, v1] = t.delta(sym("init", 2), t.initialValue());
  EXPECT_EQ(d1, sym("decide", 2));
  auto options = t.deltaAll(sym("init", 7), v1);
  ASSERT_EQ(options.size(), 1u);
  EXPECT_EQ(options[0].first, sym("decide", 2));
}

TEST(KSetConsensusType, RejectsBadK) {
  EXPECT_THROW(kSetConsensusType(0), std::logic_error);
}

TEST(TestAndSetType, FirstCallerWins) {
  auto t = testAndSetType();
  auto [old1, v1] = t.delta(sym("tas"), t.initialValue());
  EXPECT_EQ(old1, Value(0));
  EXPECT_EQ(v1, Value(1));
  auto [old2, v2] = t.delta(sym("tas"), v1);
  EXPECT_EQ(old2, Value(1));
  EXPECT_EQ(v2, Value(1));
  auto [ack, v3] = t.delta(sym("reset"), v2);
  EXPECT_EQ(ack, sym("ack"));
  EXPECT_EQ(v3, Value(0));
}

TEST(CompareAndSwapType, SwapsOnlyOnMatch) {
  auto t = compareAndSwapType(Value(0));
  auto [old1, v1] = t.delta(sym("cas", 0, 5), t.initialValue());
  EXPECT_EQ(old1, Value(0));
  EXPECT_EQ(v1, Value(5));
  auto [old2, v2] = t.delta(sym("cas", 0, 9), v1);
  EXPECT_EQ(old2, Value(5));  // mismatch: returns current, no change
  EXPECT_EQ(v2, Value(5));
}

TEST(CounterType, IncrementAndRead) {
  auto t = counterType();
  Value v = t.initialValue();
  for (int i = 0; i < 5; ++i) v = t.delta(sym("inc"), v).second;
  EXPECT_EQ(t.delta(sym("read"), v).first, Value(5));
}

TEST(FetchAddType, ReturnsOldValue) {
  auto t = fetchAddType();
  auto [old1, v1] = t.delta(sym("faa", 10), t.initialValue());
  EXPECT_EQ(old1, Value(0));
  auto [old2, v2] = t.delta(sym("faa", -3), v1);
  EXPECT_EQ(old2, Value(10));
  EXPECT_EQ(v2, Value(7));
}

TEST(QueueType, FifoOrder) {
  auto t = queueType();
  Value v = t.initialValue();
  v = t.delta(sym("enq", 1), v).second;
  v = t.delta(sym("enq", 2), v).second;
  auto [h1, v1] = t.delta(sym("deq"), v);
  EXPECT_EQ(h1, Value(1));
  auto [h2, v2] = t.delta(sym("deq"), v1);
  EXPECT_EQ(h2, Value(2));
  auto [empty, v3] = t.delta(sym("deq"), v2);
  EXPECT_EQ(empty, sym("empty"));
  EXPECT_EQ(v3, v2);
}

TEST(SnapshotType, InitiallyAllNil) {
  auto t = snapshotType(3);
  auto [view, v] = t.delta(sym("scan"), t.initialValue());
  EXPECT_EQ(view.size(), 3u);
  for (const Value& cell : view.asList()) EXPECT_TRUE(cell.isNil());
  EXPECT_EQ(v, t.initialValue());
}

TEST(SnapshotType, UpdateThenScanSeesCell) {
  auto t = snapshotType(3);
  auto [ack, v1] = t.delta(sym("update", 1, 42), t.initialValue());
  EXPECT_EQ(ack, sym("ack"));
  auto [view, v2] = t.delta(sym("scan"), v1);
  (void)v2;
  EXPECT_TRUE(view.at(0).isNil());
  EXPECT_EQ(view.at(1), Value(42));
  EXPECT_TRUE(view.at(2).isNil());
}

TEST(SnapshotType, UpdatesAreIndependentPerSegment) {
  auto t = snapshotType(2);
  Value v = t.initialValue();
  v = t.delta(sym("update", 0, 1), v).second;
  v = t.delta(sym("update", 1, 2), v).second;
  v = t.delta(sym("update", 0, 3), v).second;
  auto [view, v2] = t.delta(sym("scan"), v);
  (void)v2;
  EXPECT_EQ(view.at(0), Value(3));
  EXPECT_EQ(view.at(1), Value(2));
}

TEST(SnapshotType, RejectsBadSegments) {
  EXPECT_THROW(snapshotType(0), std::logic_error);
  auto t = snapshotType(2);
  EXPECT_THROW(t.delta(sym("update", 5, 1), t.initialValue()),
               std::logic_error);
  EXPECT_THROW(t.delta(sym("update", -1, 1), t.initialValue()),
               std::logic_error);
}

TEST(Determinize, PicksFirstOptionAndSingleInitial) {
  auto t = determinize(kSetConsensusType(2));
  EXPECT_TRUE(t.deterministic);
  EXPECT_EQ(t.initialValues.size(), 1u);
  auto [d1, v1] = t.delta(sym("init", 5), t.initialValue());
  (void)v1;
  EXPECT_EQ(d1, sym("decide", 5));
  EXPECT_EQ(t.deltaAll(sym("init", 5), t.initialValue()).size(), 1u);
}

TEST(SequentialType, TotalityViolationReported) {
  SequentialType t;
  t.name = "broken";
  t.initialValues = {Value(0)};
  t.deltaAll = [](const Value&, const Value&) {
    return std::vector<std::pair<Value, Value>>{};
  };
  EXPECT_THROW(t.delta(sym("x"), Value(0)), std::logic_error);
}

TEST(SequentialType, EmptyInitialValuesReported) {
  SequentialType t;
  t.name = "empty";
  EXPECT_THROW(t.initialValue(), std::logic_error);
}

TEST(BuiltinTypes, SampleInvocationsNonEmpty) {
  for (const auto& t :
       {registerType(), binaryConsensusType(), consensusType(),
        kSetConsensusType(2), testAndSetType(), compareAndSwapType(),
        counterType(), fetchAddType(), queueType(), snapshotType(3)}) {
    EXPECT_FALSE(t.sampleInvocations.empty()) << t.name;
    // Totality spot-check over samples from the initial value.
    for (const auto& inv : t.sampleInvocations) {
      EXPECT_FALSE(t.deltaAll(inv, t.initialValue()).empty()) << t.name;
    }
  }
}

}  // namespace
}  // namespace boosting::types
