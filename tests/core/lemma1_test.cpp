// Lemma 1: in failure-free executions, an applicable task remains
// applicable until an action of that task occurs. This is the persistence
// property the hook search's detours rely on; we verify it as a dynamic
// property over random walks of several systems.
#include <gtest/gtest.h>

#include "processes/relay_consensus.h"
#include "processes/tob_consensus.h"
#include "util/rng.h"

namespace boosting::ioa {
namespace {

// Walk `steps` random failure-free transitions; after each, check that
// every task applicable before the step is either the task just executed
// or still applicable.
void checkPersistence(const System& sys, SystemState s, std::uint64_t seed,
                      int steps) {
  util::Rng rng(seed);
  const auto& tasks = sys.allTasks();
  for (int k = 0; k < steps; ++k) {
    std::vector<TaskId> applicableBefore;
    std::vector<std::pair<TaskId, Action>> enabled;
    for (const TaskId& t : tasks) {
      if (auto a = sys.enabled(s, t)) {
        applicableBefore.push_back(t);
        enabled.emplace_back(t, std::move(*a));
      }
    }
    ASSERT_FALSE(enabled.empty());
    const auto& [fired, action] = enabled[rng.nextBelow(enabled.size())];
    sys.applyInPlace(s, action);
    for (const TaskId& t : applicableBefore) {
      if (t == fired) continue;
      EXPECT_TRUE(sys.enabled(s, t).has_value())
          << t.str() << " lost applicability after " << action.str();
    }
  }
}

TEST(LemmaOne, PersistenceInRelaySystem) {
  processes::RelaySystemSpec spec;
  spec.processCount = 3;
  spec.objectResilience = 1;
  auto sys = processes::buildRelayConsensusSystem(spec);
  SystemState s = sys->initialState();
  for (int i = 0; i < 3; ++i) sys->injectInit(s, i, util::Value(i % 2));
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    checkPersistence(*sys, s, seed, 60);
  }
}

TEST(LemmaOne, PersistenceInTOBSystem) {
  processes::TOBConsensusSpec spec;
  spec.processCount = 3;
  spec.serviceResilience = 1;
  auto sys = processes::buildTOBConsensusSystem(spec);
  SystemState s = sys->initialState();
  for (int i = 0; i < 3; ++i) sys->injectInit(s, i, util::Value(1 - i % 2));
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    checkPersistence(*sys, s, seed, 60);
  }
}

TEST(LemmaOne, PersistenceInBridgeSystem) {
  processes::BridgeSystemSpec spec;
  auto sys = processes::buildBridgeConsensusSystem(spec);
  SystemState s = sys->initialState();
  for (int i = 0; i < 3; ++i) sys->injectInit(s, i, util::Value(i & 1));
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    checkPersistence(*sys, s, seed, 80);
  }
}

TEST(LemmaOne, ProcessTasksAlwaysApplicable) {
  // The stronger half the proof uses: process tasks are applicable in
  // EVERY state (input-enabled dummy steps).
  processes::RelaySystemSpec spec;
  spec.processCount = 2;
  spec.objectResilience = 0;
  auto sys = processes::buildRelayConsensusSystem(spec);
  SystemState s = sys->initialState();
  util::Rng rng(5);
  const auto& tasks = sys->allTasks();
  for (int k = 0; k < 100; ++k) {
    for (int i = 0; i < 2; ++i) {
      EXPECT_TRUE(sys->enabled(s, TaskId::process(i)).has_value());
    }
    std::vector<Action> enabled;
    for (const TaskId& t : tasks) {
      if (auto a = sys->enabled(s, t)) enabled.push_back(std::move(*a));
    }
    sys->applyInPlace(s, enabled[rng.nextBelow(enabled.size())]);
    if (k == 10) sys->injectInit(s, 0, util::Value(1));
    if (k == 30) sys->injectInit(s, 1, util::Value(0));
  }
}

}  // namespace
}  // namespace boosting::ioa
