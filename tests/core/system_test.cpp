// Composition semantics (Section 2.2.3): slot layout, participant routing,
// fail fan-out, state value semantics.
#include "ioa/system.h"

#include <gtest/gtest.h>

#include "processes/relay_consensus.h"
#include "services/canonical_atomic.h"
#include "services/register.h"
#include "types/builtin_types.h"

namespace boosting::ioa {
namespace {

using processes::buildRelayConsensusSystem;
using processes::RelaySystemSpec;
using util::sym;
using util::Value;

RelaySystemSpec spec3() {
  RelaySystemSpec s;
  s.processCount = 3;
  s.objectResilience = 1;
  return s;
}

TEST(System, SlotLayout) {
  auto sys = buildRelayConsensusSystem(spec3());
  EXPECT_EQ(sys->processCount(), 3);
  EXPECT_EQ(sys->serviceCount(), 2);  // consensus object + scratch register
  EXPECT_EQ(sys->slotForProcess(0), 0u);
  EXPECT_EQ(sys->slotForProcess(2), 2u);
  EXPECT_EQ(sys->slotForService(100), 3u);
  EXPECT_EQ(sys->slotForService(200), 4u);
  EXPECT_TRUE(sys->isProcessSlot(1));
  EXPECT_FALSE(sys->isProcessSlot(3));
}

TEST(System, ServiceMetaRecordsTopology) {
  auto sys = buildRelayConsensusSystem(spec3());
  const ServiceMeta& m = sys->serviceMeta(100);
  EXPECT_EQ(m.id, 100);
  EXPECT_EQ(m.endpoints, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(m.resilience, 1);
  EXPECT_FALSE(m.failureAware);
  EXPECT_FALSE(m.isRegister);
  EXPECT_TRUE(sys->serviceMeta(200).isRegister);
  // Registers are wait-free: resilience |J| - 1.
  EXPECT_EQ(sys->serviceMeta(200).resilience, 2);
}

TEST(System, ServiceIdsSorted) {
  auto sys = buildRelayConsensusSystem(spec3());
  EXPECT_EQ(sys->serviceIds(), (std::vector<int>{100, 200}));
}

TEST(System, UnknownServiceIdThrows) {
  auto sys = buildRelayConsensusSystem(spec3());
  EXPECT_THROW(sys->slotForService(999), std::logic_error);
  EXPECT_THROW(sys->serviceMeta(999), std::logic_error);
}

TEST(System, DuplicateServiceIdRejected) {
  System sys;
  sys.addProcess(std::make_shared<processes::RelayConsensusProcess>(0, 7));
  auto obj = std::make_shared<services::CanonicalAtomicObject>(
      types::binaryConsensusType(), 7, std::vector<int>{0}, 0);
  sys.addService(obj, obj->meta());
  EXPECT_THROW(sys.addService(obj, obj->meta()), std::logic_error);
}

TEST(System, EndpointOutOfRangeRejected) {
  System sys;
  sys.addProcess(std::make_shared<processes::RelayConsensusProcess>(0, 7));
  auto obj = std::make_shared<services::CanonicalAtomicObject>(
      types::binaryConsensusType(), 7, std::vector<int>{0, 1}, 0);
  EXPECT_THROW(sys.addService(obj, obj->meta()), std::logic_error);
}

TEST(System, ProcessesBeforeServicesEnforced) {
  System sys;
  sys.addProcess(std::make_shared<processes::RelayConsensusProcess>(0, 7));
  auto obj = std::make_shared<services::CanonicalAtomicObject>(
      types::binaryConsensusType(), 7, std::vector<int>{0}, 0);
  sys.addService(obj, obj->meta());
  EXPECT_THROW(
      sys.addProcess(std::make_shared<processes::RelayConsensusProcess>(1, 7)),
      std::logic_error);
}

TEST(System, ParticipantsOfInvokeAndRespond) {
  auto sys = buildRelayConsensusSystem(spec3());
  auto inv = Action::invoke(1, 100, sym("init", 0));
  auto participants = sys->participants(inv);
  ASSERT_EQ(participants.size(), 2u);
  EXPECT_EQ(participants[0], sys->slotForProcess(1));
  EXPECT_EQ(participants[1], sys->slotForService(100));

  auto resp = Action::respond(2, 200, Value::nil());
  participants = sys->participants(resp);
  ASSERT_EQ(participants.size(), 2u);
  EXPECT_EQ(participants[1], sys->slotForService(200));
}

TEST(System, AtMostTwoParticipantsForNonFailActions) {
  auto sys = buildRelayConsensusSystem(spec3());
  // Section 2.2.3: every action except fail has at most two participants.
  EXPECT_LE(sys->participants(Action::envInit(0, Value(1))).size(), 2u);
  EXPECT_LE(sys->participants(Action::envDecide(0, Value(1))).size(), 2u);
  EXPECT_LE(sys->participants(Action::perform(0, 100)).size(), 2u);
  EXPECT_EQ(sys->participants(Action::procStep(1)).size(), 1u);
}

TEST(System, FailFansOutToProcessAndItsServices) {
  auto sys = buildRelayConsensusSystem(spec3());
  auto participants = sys->participants(Action::fail(1));
  // P1 + consensus object + register (both have endpoint 1).
  EXPECT_EQ(participants.size(), 3u);
}

TEST(System, FailOnlyReachesServicesWithThatEndpoint) {
  // Bridge system: consensus object endpoints {0,1}, register {1,2}.
  processes::BridgeSystemSpec spec;
  auto sys = buildBridgeConsensusSystem(spec);
  EXPECT_EQ(sys->participants(Action::fail(0)).size(), 2u);  // P0 + object
  EXPECT_EQ(sys->participants(Action::fail(2)).size(), 2u);  // P2 + register
  EXPECT_EQ(sys->participants(Action::fail(1)).size(), 3u);  // bridge: both
}

TEST(System, InitialStateHasOnePartPerComponent) {
  auto sys = buildRelayConsensusSystem(spec3());
  SystemState s = sys->initialState();
  EXPECT_EQ(s.partCount(), 5u);
}

TEST(SystemState, CopyIsDeepAndEqual) {
  auto sys = buildRelayConsensusSystem(spec3());
  SystemState s = sys->initialState();
  SystemState copy(s);
  EXPECT_TRUE(s.equals(copy));
  EXPECT_EQ(s.hash(), copy.hash());
  // Mutating the copy leaves the original untouched.
  sys->injectInit(copy, 0, Value(1));
  EXPECT_FALSE(s.equals(copy));
}

TEST(SystemState, InitInjectionChangesOnlyThatProcess) {
  auto sys = buildRelayConsensusSystem(spec3());
  SystemState a = sys->initialState();
  SystemState b = sys->initialState();
  sys->injectInit(a, 0, Value(1));
  sys->injectInit(b, 0, Value(1));
  EXPECT_TRUE(a.equals(b));
  EXPECT_EQ(a.hash(), b.hash());
  sys->injectInit(b, 1, Value(0));
  EXPECT_FALSE(a.equals(b));
}

TEST(SystemState, FailInjectionRecordsAtServices) {
  auto sys = buildRelayConsensusSystem(spec3());
  SystemState s = sys->initialState();
  sys->injectFail(s, 2);
  const auto& svc = services::CanonicalGeneralService::stateOf(
      s.part(sys->slotForService(100)));
  EXPECT_EQ(svc.failed.count(2), 1u);
  EXPECT_EQ(svc.failed.size(), 1u);
}

TEST(System, AllTasksCoversProcessesAndServices) {
  auto sys = buildRelayConsensusSystem(spec3());
  const auto& tasks = sys->allTasks();
  // 3 process tasks + (3 perform + 3 output) for each of two services.
  EXPECT_EQ(tasks.size(), 3u + 6u + 6u);
  int processTasks = 0;
  for (const auto& t : tasks) {
    if (t.owner == TaskOwner::Process) ++processTasks;
  }
  EXPECT_EQ(processTasks, 3);
}

TEST(System, EnabledProcessTaskIsAlwaysPresent) {
  // Paper: every process always has some enabled locally controlled action.
  auto sys = buildRelayConsensusSystem(spec3());
  SystemState s = sys->initialState();
  for (int i = 0; i < 3; ++i) {
    auto a = sys->enabled(s, TaskId::process(i));
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->kind, ActionKind::ProcDummy);  // nothing to do before init
  }
  sys->injectInit(s, 0, Value(1));
  auto a = sys->enabled(s, TaskId::process(0));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, ActionKind::Invoke);
}

TEST(System, ApplyCloneMatchesApplyInPlace) {
  auto sys = buildRelayConsensusSystem(spec3());
  SystemState s = sys->initialState();
  sys->injectInit(s, 0, Value(1));
  Action a = *sys->enabled(s, TaskId::process(0));
  SystemState viaClone = sys->apply(s, a);
  sys->applyInPlace(s, a);
  EXPECT_TRUE(viaClone.equals(s));
}

}  // namespace
}  // namespace boosting::ioa
