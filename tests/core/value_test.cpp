#include "util/value.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace boosting::util {
namespace {

TEST(Value, DefaultIsNil) {
  Value v;
  EXPECT_TRUE(v.isNil());
  EXPECT_EQ(v.kind(), Value::Kind::Nil);
  EXPECT_EQ(v.str(), "nil");
}

TEST(Value, IntRoundTrip) {
  Value v(42);
  EXPECT_TRUE(v.isInt());
  EXPECT_EQ(v.asInt(), 42);
  EXPECT_EQ(v.str(), "42");
  EXPECT_EQ(Value(-7).asInt(), -7);
}

TEST(Value, StringRoundTrip) {
  Value v("hello");
  EXPECT_TRUE(v.isStr());
  EXPECT_EQ(v.asStr(), "hello");
  EXPECT_EQ(v.str(), "hello");
}

TEST(Value, ListRoundTrip) {
  Value v = Value::list({Value(1), Value("x"), Value::nil()});
  EXPECT_TRUE(v.isList());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at(0).asInt(), 1);
  EXPECT_EQ(v.at(1).asStr(), "x");
  EXPECT_TRUE(v.at(2).isNil());
  EXPECT_EQ(v.str(), "(1 x nil)");
}

TEST(Value, CheckedAccessorsThrowOnKindMismatch) {
  EXPECT_THROW(Value(1).asStr(), std::logic_error);
  EXPECT_THROW(Value("s").asInt(), std::logic_error);
  EXPECT_THROW(Value(1).asList(), std::logic_error);
  EXPECT_THROW(Value::nil().at(0), std::logic_error);
  EXPECT_THROW(Value::list({Value(1)}).at(1), std::logic_error);
}

TEST(Value, TagConvention) {
  EXPECT_EQ(sym("decide", 1).tag(), "decide");
  EXPECT_EQ(Value("read").tag(), "read");
  EXPECT_EQ(Value(5).tag(), "");
  EXPECT_EQ(Value::list({Value(1), Value(2)}).tag(), "");
}

TEST(Value, SymBuilders) {
  EXPECT_EQ(sym("read").str(), "(read)");
  EXPECT_EQ(sym("write", 3).str(), "(write 3)");
  EXPECT_EQ(sym("cas", 0, 1).str(), "(cas 0 1)");
  EXPECT_EQ(sym("rcv", Value("m"), 2, 3).str(), "(rcv m 2 3)");
}

TEST(Value, SetNormalizesOrderAndDuplicates) {
  Value a = Value::set({Value(3), Value(1), Value(3), Value(2)});
  EXPECT_EQ(a.str(), "(1 2 3)");
  Value b = Value::set({Value(2), Value(1), Value(3)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(Value, SetContainsAndInsert) {
  Value s = Value::set({Value(1), Value(3)});
  EXPECT_TRUE(s.setContains(Value(1)));
  EXPECT_FALSE(s.setContains(Value(2)));
  Value s2 = s.setInsert(Value(2));
  EXPECT_EQ(s2.str(), "(1 2 3)");
  // Insert of an existing element returns an equal set.
  EXPECT_EQ(s.setInsert(Value(3)), s);
  // Original is unchanged (value semantics).
  EXPECT_EQ(s.str(), "(1 3)");
}

TEST(Value, SetUnion) {
  Value a = Value::set({Value(1), Value(2)});
  Value b = Value::set({Value(2), Value(4)});
  EXPECT_EQ(a.setUnion(b).str(), "(1 2 4)");
  EXPECT_EQ(a.setUnion(Value::emptySet()), a);
  EXPECT_EQ(Value::emptySet().setUnion(b), b);
}

TEST(Value, TotalOrderAcrossKinds) {
  // Nil < Int < Str < List.
  EXPECT_LT(Value::nil(), Value(0));
  EXPECT_LT(Value(99), Value("a"));
  EXPECT_LT(Value("zzz"), Value::list({}));
}

TEST(Value, TotalOrderWithinKinds) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value::list({Value(1)}), Value::list({Value(1), Value(0)}));
  EXPECT_LT(Value::list({Value(1), Value(0)}), Value::list({Value(2)}));
  // Irreflexivity.
  EXPECT_FALSE(Value(1) < Value(1));
}

TEST(Value, EqualityDistinguishesKinds) {
  EXPECT_NE(Value(0), Value::nil());
  EXPECT_NE(Value(0), Value("0"));
  EXPECT_NE(Value::list({}), Value::nil());
}

TEST(Value, HashStableAndUsableInUnorderedSet) {
  std::unordered_set<Value> set;
  set.insert(Value(1));
  set.insert(Value("1"));
  set.insert(Value::list({Value(1)}));
  set.insert(Value(1));  // duplicate
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.count(Value(1)));
}

TEST(Value, NestedListsCompareStructurally) {
  Value a = Value::list({sym("decide", 1), Value::list({Value(2)})});
  Value b = Value::list({sym("decide", 1), Value::list({Value(2)})});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  Value c = Value::list({sym("decide", 0), Value::list({Value(2)})});
  EXPECT_NE(a, c);
}

TEST(Value, SelfAliasingAssignmentUnwrapsInPlace) {
  // v = v.at(1) assigns from a reference into v's own list -- the natural
  // way to unwrap a ("tag", arg) payload in place. A naive variant
  // copy-assign destroys the list before reading the element.
  Value v = sym("init", 7);
  v = v.at(1);
  EXPECT_EQ(v, Value(7));

  Value nested = sym("wrap", Value::list({Value(1), Value(2)}));
  nested = nested.at(1);
  EXPECT_EQ(nested, Value::list({Value(1), Value(2)}));

  Value self = sym("x", 3);
  self = self;  // NOLINT(clang-diagnostic-self-assign-overloaded)
  EXPECT_EQ(self, sym("x", 3));
}

TEST(Value, UsableInStdSet) {
  std::set<Value> s;
  s.insert(Value(2));
  s.insert(Value(1));
  s.insert(sym("x"));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.begin()->asInt(), 1);
}

}  // namespace
}  // namespace boosting::util
