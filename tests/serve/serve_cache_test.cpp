// Cross-job caching tests: the warm-memo differential (warm-cache verdicts
// bit-identical to cold, including state counts, action intern indices and
// witness text), memo consistency across a cancelled job, and the
// ServiceContextPool lease/bypass/eviction semantics. The differential
// also runs under the ASan/TSan test targets, which is where a stale
// canonical pointer or an unsynchronized memo handoff would detonate.
#include "serve/cache.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/adversary.h"
#include "analysis/bivalence.h"
#include "analysis/parallel_explorer.h"
#include "analysis/state_graph.h"
#include "serve/candidates.h"
#include "serve/scheduler.h"
#include "sim/trace_io.h"

namespace boosting::serve {
namespace {

analysis::AdversaryReport analyze(
    const ioa::System& sys, std::shared_ptr<analysis::AnalysisMemo> memo) {
  analysis::AdversaryConfig cfg;
  cfg.claimedFailures = 2;
  cfg.exemptFailureAware = true;
  cfg.memo = std::move(memo);
  return analysis::analyzeConsensusCandidate(sys, cfg);
}

void expectBitIdentical(const analysis::AdversaryReport& a,
                        const analysis::AdversaryReport& b) {
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.statesExplored, b.statesExplored);
  EXPECT_EQ(a.witnessFailures, b.witnessFailures);
  EXPECT_EQ(sim::renderExecution(a.witness), sim::renderExecution(b.witness));
}

TEST(ServeCache, WarmMemoVerdictBitIdenticalToCold) {
  auto sys = buildCandidateSystem("relay", 3, 1, nullptr);
  ASSERT_NE(sys, nullptr);
  // Cold reference: the legacy private-memo path (cfg.memo == nullptr).
  const auto cold = analyze(*sys, nullptr);
  // Shared memo, used by three consecutive jobs: first fills it, the rest
  // run warm. Every run must be bit-identical to the cold reference.
  auto memo = std::make_shared<analysis::AnalysisMemo>(*sys);
  const auto first = analyze(*sys, memo);
  const std::size_t poolAfterFirst = memo->actionPoolSize();
  const auto second = analyze(*sys, memo);
  const auto third = analyze(*sys, memo);
  expectBitIdentical(cold, first);
  expectBitIdentical(cold, second);
  expectBitIdentical(cold, third);
  // Warm runs re-intern the same actions: the pool must not grow, and the
  // indices handed out are the same first-intern-order indices (otherwise
  // the CompactEdges comparisons above could not have matched).
  EXPECT_EQ(memo->actionPoolSize(), poolAfterFirst);
}

TEST(ServeCache, WarmMemoGraphsMatchNodeForNode) {
  auto sys = buildCandidateSystem("relay", 3, 1, nullptr);
  ASSERT_NE(sys, nullptr);
  analysis::StateGraph cold(*sys);
  const auto coldRoot =
      cold.intern(analysis::canonicalInitialization(*sys, 1));
  analysis::exploreReachable(cold, coldRoot);

  auto memo = std::make_shared<analysis::AnalysisMemo>(*sys);
  for (int round = 0; round < 2; ++round) {
    analysis::StateGraph warm(*sys, nullptr, nullptr, {}, memo);
    const auto warmRoot =
        warm.intern(analysis::canonicalInitialization(*sys, 1));
    analysis::exploreReachable(warm, warmRoot);
    ASSERT_EQ(warm.size(), cold.size()) << "round " << round;
    for (analysis::NodeId n = 0; n < cold.size(); ++n) {
      ASSERT_EQ(warm.state(n), cold.state(n))
          << "node " << n << " diverged in round " << round;
    }
    std::string why;
    EXPECT_TRUE(warm.checkConsistent(&why)) << why;
  }
}

TEST(ServeCache, MemoStaysConsistentAcrossCancelledJob) {
  auto sys = buildCandidateSystem("relay", 3, 1, nullptr);
  ASSERT_NE(sys, nullptr);
  const auto cold = analyze(*sys, nullptr);

  auto memo = std::make_shared<analysis::AnalysisMemo>(*sys);
  // A job cancelled mid-exploration: the hook throws JobCancelled through
  // the engines' abort path, which guarantees graph consistency -- and
  // therefore memo reusability.
  analysis::AdversaryConfig cfg;
  cfg.claimedFailures = 2;
  cfg.exemptFailureAware = true;
  cfg.memo = memo;
  cfg.exploration.expansionHook = [](std::size_t count) {
    if (count > 5) throw JobCancelled();
  };
  EXPECT_THROW(analysis::analyzeConsensusCandidate(*sys, cfg), JobCancelled);
  // The next (uncancelled) job over the same memo must still be
  // bit-identical to cold.
  expectBitIdentical(cold, analyze(*sys, memo));
}

TEST(ServeCache, StateGraphRejectsMemoOfDifferentSystem) {
  auto sysA = buildCandidateSystem("relay", 3, 1, nullptr);
  auto sysB = buildCandidateSystem("relay", 3, 1, nullptr);
  ASSERT_NE(sysA, nullptr);
  ASSERT_NE(sysB, nullptr);
  auto memoA = std::make_shared<analysis::AnalysisMemo>(*sysA);
  // Equal parameters but a DIFFERENT System object: pointer-keyed caches
  // would silently poison, so the graph must refuse up front.
  EXPECT_THROW(
      analysis::StateGraph(*sysB, nullptr, nullptr, {}, memoA),
      std::invalid_argument);
}

TEST(ServeCache, PoolLeasesExclusivelyAndCountsBypasses) {
  ServiceContextPool pool(4);
  const ServiceKey key{"relay", 3, 1, analysis::SymmetryMode::Auto,
                       analysis::PorMode::Auto};
  std::string err;
  auto first = pool.acquire(key, &err);
  ASSERT_TRUE(first.has_value()) << err;
  EXPECT_FALSE(first->warm());
  // Same key while leased: bypass, not a second context.
  auto busy = pool.acquire(key, &err);
  EXPECT_FALSE(busy.has_value());
  EXPECT_TRUE(err.empty());
  first.reset();  // release
  auto second = pool.acquire(key, &err);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->warm());
  const auto stats = pool.stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.bypasses, 1u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ServeCache, PoolEvictsIdleContextsOverTheCap) {
  ServiceContextPool pool(1);
  std::string err;
  const ServiceKey k1{"relay", 2, 0, analysis::SymmetryMode::Auto,
                      analysis::PorMode::Auto};
  const ServiceKey k2{"relay", 3, 1, analysis::SymmetryMode::Auto,
                      analysis::PorMode::Auto};
  pool.acquire(k1, &err).reset();
  pool.acquire(k2, &err).reset();  // k1 is idle -> evicted
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.stats().evictions, 1u);
  // k1 again: a fresh (cold) build, not a stale context.
  auto again = pool.acquire(k1, &err);
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->warm());
}

TEST(ServeCache, DisabledPoolNeverBuilds) {
  ServiceContextPool pool(0);
  const ServiceKey key{"relay", 3, 1, analysis::SymmetryMode::Auto,
                       analysis::PorMode::Auto};
  std::string err;
  EXPECT_FALSE(pool.acquire(key, &err).has_value());
  EXPECT_TRUE(err.empty());
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.stats().builds, 0u);
}

TEST(ServeCache, KeySeparatesReductionModes) {
  // Different reduction modes must map to different contexts: their
  // explorations produce different graphs over the same system.
  ServiceContextPool pool(8);
  std::string err;
  const ServiceKey off{"relay", 3, 1, analysis::SymmetryMode::Off,
                       analysis::PorMode::Off};
  const ServiceKey on{"relay", 3, 1, analysis::SymmetryMode::On,
                      analysis::PorMode::On};
  pool.acquire(off, &err).reset();
  pool.acquire(on, &err).reset();
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.stats().builds, 2u);
}

}  // namespace
}  // namespace boosting::serve
