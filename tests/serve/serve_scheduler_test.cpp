// TickScheduler tests: dispatch order (priority desc, FIFO within), the
// concurrency bound, queued-job cancellation, cancellation of a RUNNING
// exploration draining through the engines' abort path (graph stays
// checkConsistent), and pause/resume being observationally inert.
#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "analysis/bivalence.h"
#include "analysis/parallel_explorer.h"
#include "analysis/state_graph.h"
#include "serve/candidates.h"

namespace boosting::serve {
namespace {

using Clock = std::chrono::steady_clock;

void drainFast(TickScheduler& s) {
  while (s.tick() != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

TEST(ServeScheduler, DispatchesByPriorityThenSubmissionOrder) {
  TickScheduler sched(TickScheduler::Config{1});
  std::mutex m;
  std::vector<std::string> order;
  auto body = [&](const std::string& tag) {
    return [&, tag](JobControl&) {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(tag);
    };
  };
  // Submitted low, high, high, mid -- must run high1, high2, mid, low.
  sched.submit("low", -1, body("low"));
  sched.submit("high1", 5, body("high1"));
  sched.submit("high2", 5, body("high2"));
  sched.submit("mid", 0, body("mid"));
  drainFast(sched);
  EXPECT_EQ(order,
            (std::vector<std::string>{"high1", "high2", "mid", "low"}));
}

TEST(ServeScheduler, BoundsConcurrency) {
  TickScheduler sched(TickScheduler::Config{2});
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < 6; ++i) {
    sched.submit("j", 0, [&](JobControl&) {
      const int now = ++inside;
      int seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      --inside;
    });
  }
  // A few ticks to dispatch as much as the bound allows.
  for (int i = 0; i < 10; ++i) {
    sched.tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(sched.runningCount(), 2u);
  EXPECT_EQ(sched.queuedCount(), 4u);
  release = true;
  drainFast(sched);
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(sched.runningCount(), 0u);
}

TEST(ServeScheduler, CancelsQueuedJobWithoutRunningIt) {
  TickScheduler sched(TickScheduler::Config{1});
  std::atomic<bool> ran{false};
  JobState finalState = JobState::Done;
  const auto id = sched.submit(
      "doomed", 0, [&](JobControl&) { ran = true; },
      [&](std::uint64_t, JobState s, const std::string&) { finalState = s; });
  EXPECT_TRUE(sched.cancel(id));
  drainFast(sched);
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(finalState, JobState::Cancelled);
  // A finished job cannot be cancelled/paused/resumed again.
  EXPECT_FALSE(sched.cancel(id));
  EXPECT_FALSE(sched.pause(id));
  EXPECT_FALSE(sched.resume(id));
}

TEST(ServeScheduler, CancelDrainsRunningExplorationThroughAbortPath) {
  // The body explores relay n=3 G(C) with the per-expansion checkpoint
  // wired into the engines' hook; cancellation must surface as a
  // Cancelled outcome AND leave the StateGraph checked-consistent (the
  // property that makes a cached context reusable after a cancel).
  auto sys = buildCandidateSystem("relay", 3, 1, nullptr);
  ASSERT_NE(sys, nullptr);
  analysis::StateGraph g(*sys);
  std::atomic<bool> go{false};
  TickScheduler sched(TickScheduler::Config{1});
  JobState finalState = JobState::Done;
  const auto id = sched.submit(
      "explore", 0,
      [&](JobControl& ctl) {
        while (!go.load()) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        analysis::ExplorationPolicy policy;
        policy.expansionHook = [&ctl](std::size_t) { ctl.checkpoint(); };
        const auto root =
            g.intern(analysis::canonicalInitialization(*sys, 1));
        analysis::exploreReachable(g, root, policy);
      },
      [&](std::uint64_t, JobState s, const std::string&) { finalState = s; });
  // Dispatch, cancel while the worker is gated, then release: the very
  // first expansion checkpoint observes the cancel.
  sched.tick();
  EXPECT_EQ(sched.runningCount(), 1u);
  EXPECT_TRUE(sched.cancel(id));
  go = true;
  drainFast(sched);
  EXPECT_EQ(finalState, JobState::Cancelled);
  std::string why;
  EXPECT_TRUE(g.checkConsistent(&why)) << why;
}

TEST(ServeScheduler, PauseResumeIsObservationallyInert) {
  // Reference: explore without any scheduler interference.
  auto sys = buildCandidateSystem("relay", 3, 1, nullptr);
  ASSERT_NE(sys, nullptr);
  std::size_t refStates = 0;
  {
    analysis::StateGraph ref(*sys);
    const auto root =
        ref.intern(analysis::canonicalInitialization(*sys, 1));
    analysis::exploreReachable(ref, root);
    refStates = ref.size();
  }

  analysis::StateGraph g(*sys);
  TickScheduler sched(TickScheduler::Config{1});
  std::atomic<std::uint64_t> expansions{0};
  std::atomic<bool> go{false};
  JobState finalState = JobState::Failed;
  const auto id = sched.submit(
      "explore", 0,
      [&](JobControl& ctl) {
        while (!go.load()) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        analysis::ExplorationPolicy policy;
        policy.expansionHook = [&](std::size_t) {
          ctl.checkpoint();
          ++expansions;
        };
        const auto root =
            g.intern(analysis::canonicalInitialization(*sys, 1));
        analysis::exploreReachable(g, root, policy);
      },
      [&](std::uint64_t, JobState s, const std::string&) { finalState = s; });
  sched.tick();
  // The worker is gated, so this first pause definitely lands before the
  // exploration starts: the first checkpoint blocks until the resume.
  EXPECT_TRUE(sched.pause(id));
  go = true;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(sched.resume(id));
  // Pause/resume storm while (or after) the exploration runs; once the
  // job finished these are no-ops returning false, which is fine -- the
  // assertion is that the result is unchanged either way.
  for (int i = 0; i < 5; ++i) {
    sched.pause(id);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    sched.resume(id);
    sched.tick();
  }
  drainFast(sched);
  EXPECT_EQ(finalState, JobState::Done);
  EXPECT_EQ(g.size(), refStates);
  EXPECT_GT(expansions.load(), 0u);
  std::string why;
  EXPECT_TRUE(g.checkConsistent(&why)) << why;
}

TEST(ServeScheduler, PausedJobObservesCancellation) {
  JobControl ctl;
  ctl.requestPause();
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ctl.requestCancel();
  });
  // checkpoint blocks on the pause, then the cancel arrives and throws.
  EXPECT_THROW(ctl.checkpoint(), JobCancelled);
  t.join();
}

TEST(ServeScheduler, CancelWinsOverPause) {
  JobControl ctl;
  ctl.requestCancel();
  ctl.requestPause();  // must not demote the cancel
  EXPECT_TRUE(ctl.cancelRequested());
  EXPECT_THROW(ctl.checkpoint(), JobCancelled);
  ctl.requestResume();  // must not clear the cancel either
  EXPECT_TRUE(ctl.cancelRequested());
}

TEST(ServeScheduler, FailedBodySurfacesItsError) {
  TickScheduler sched(TickScheduler::Config{1});
  JobState finalState = JobState::Done;
  std::string error;
  sched.submit(
      "boom", 0,
      [](JobControl&) { throw std::runtime_error("engine exploded"); },
      [&](std::uint64_t, JobState s, const std::string& e) {
        finalState = s;
        error = e;
      });
  drainFast(sched);
  EXPECT_EQ(finalState, JobState::Failed);
  EXPECT_EQ(error, "engine exploded");
}

}  // namespace
}  // namespace boosting::serve
