// Wire-format tests: the flat JSONL protocol must round-trip every value
// kind, enforce RFC 8259 string rules, and reject anything outside the
// flat-object grammar with a position-bearing diagnostic.
#include "serve/wire.h"

#include <gtest/gtest.h>

namespace boosting::serve {
namespace {

WireObject parse(const std::string& line) {
  WireObject obj;
  std::string err;
  EXPECT_TRUE(parseWireObject(line, &obj, &err)) << line << ": " << err;
  return obj;
}

std::string rejects(const std::string& line) {
  WireObject obj;
  std::string err;
  EXPECT_FALSE(parseWireObject(line, &obj, &err)) << line;
  EXPECT_FALSE(err.empty()) << "diagnostic must be set: " << line;
  return err;
}

TEST(ServeWire, ParsesEveryValueKind) {
  const auto obj = parse(R"({"s":"x","i":-42,"d":1.5,"t":true,"f":false,)"
                         R"("z":null})");
  EXPECT_EQ(getStr(obj, "s"), "x");
  EXPECT_EQ(getInt(obj, "i"), -42);
  EXPECT_EQ(obj.at("d").kind, WireValue::Kind::Double);
  EXPECT_DOUBLE_EQ(obj.at("d").d, 1.5);
  EXPECT_TRUE(getBool(obj, "t"));
  EXPECT_FALSE(getBool(obj, "f", true));
  EXPECT_EQ(obj.at("z").kind, WireValue::Kind::Null);
}

TEST(ServeWire, RoundTripsThroughSerializer) {
  WireObject obj;
  obj["name"] = WireValue::ofStr("tab\there \"quoted\" \\ nl\n");
  obj["count"] = WireValue::ofInt(1234567890123LL);
  obj["rate"] = WireValue::ofDouble(0.1);
  obj["on"] = WireValue::ofBool(true);
  const std::string line = writeWireObject(obj);
  const auto back = parse(line);
  EXPECT_EQ(getStr(back, "name"), "tab\there \"quoted\" \\ nl\n");
  EXPECT_EQ(getInt(back, "count"), 1234567890123LL);
  EXPECT_DOUBLE_EQ(back.at("rate").d, 0.1);
  EXPECT_TRUE(getBool(back, "on"));
  // Deterministic output: keys sorted, stable across serializations.
  EXPECT_EQ(line, writeWireObject(back));
}

TEST(ServeWire, DecodesUnicodeEscapes) {
  const auto obj = parse(R"({"s":"Aé€😀"})");
  EXPECT_EQ(getStr(obj, "s"), "A\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");
}

TEST(ServeWire, EmptyObjectAndWhitespace) {
  EXPECT_TRUE(parse("{}").empty());
  EXPECT_EQ(getInt(parse("  { \"a\" : 1 }  "), "a"), 1);
}

TEST(ServeWire, RejectsNestedContainers) {
  EXPECT_NE(rejects(R"({"a":{"b":1}})").find("nested"), std::string::npos);
  EXPECT_NE(rejects(R"({"a":[1,2]})").find("nested"), std::string::npos);
}

TEST(ServeWire, RejectsMalformedInput) {
  rejects("");
  rejects("not json");
  rejects(R"({"a":1)");          // unterminated object
  rejects(R"({"a" 1})");         // missing colon
  rejects(R"({"a":1} trailing)");  // trailing garbage
  rejects(R"({"a":tru})");       // bad literal
  rejects(R"({"a":-})");         // malformed number
  rejects(R"({"a":"\q"})");      // unknown escape
  rejects(R"({"a":"\ud800"})");  // lone high surrogate
  rejects("{\"a\":\"ctl\x01\"}");  // raw control character
}

TEST(ServeWire, HelpersFallBackOnWrongKind) {
  const auto obj = parse(R"({"n":"three"})");
  EXPECT_EQ(getInt(obj, "n", 7), 7);
  EXPECT_EQ(getStr(obj, "missing", "dflt"), "dflt");
  EXPECT_TRUE(hasKey(obj, "n"));
  EXPECT_FALSE(hasKey(obj, "missing"));
}

}  // namespace
}  // namespace boosting::serve
