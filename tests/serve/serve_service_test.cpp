// AnalysisService tests: submit-time validation (mirroring the CLI flag
// diagnostics), end-to-end verdict equality with warm-cache reuse,
// priority-ordered completion, and pre-dispatch cancellation.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/registry.h"

namespace boosting::serve {
namespace {

JobSpec relaySpec(const std::string& id) {
  JobSpec spec;
  spec.id = id;
  spec.candidate = "relay";
  spec.n = 3;
  spec.f = 1;
  return spec;
}

std::string rejectionFor(AnalysisService& svc, const JobSpec& spec) {
  const auto err = svc.submit(spec, [](const JobResult&) {});
  EXPECT_TRUE(err.has_value()) << "spec '" << spec.id << "' was accepted";
  return err.value_or("");
}

TEST(ServeService, RejectsInvalidSpecsWithCliStyleDiagnostics) {
  AnalysisService svc(AnalysisService::Config{});

  JobSpec spec = relaySpec("");
  EXPECT_NE(rejectionFor(svc, spec).find("id"), std::string::npos);

  spec = relaySpec("j");
  spec.candidate = "banana";
  EXPECT_NE(rejectionFor(svc, spec).find("unknown candidate"),
            std::string::npos);

  // Diagnostics lead with the wire field name, mirroring the CLI's
  // flag-first shape.
  spec = relaySpec("j");
  spec.n = 1;
  EXPECT_NE(rejectionFor(svc, spec).find("n: value 1 out of range"),
            std::string::npos);

  spec = relaySpec("j");
  spec.f = 3;  // f must be < n
  EXPECT_NE(rejectionFor(svc, spec).find("f: service resilience"),
            std::string::npos);

  spec = relaySpec("j");
  spec.claim = 3;  // claim must be < n
  EXPECT_NE(rejectionFor(svc, spec).find("claim: claimed failures"),
            std::string::npos);

  spec = relaySpec("j");
  spec.shards = 3;  // not a power of two
  spec.shardsExplicit = true;
  EXPECT_NE(rejectionFor(svc, spec).find("shards: 3 is not a power of two"),
            std::string::npos);

  // Duplicate LIVE id: the first submission is still queued (no tick yet).
  spec = relaySpec("dup");
  EXPECT_FALSE(svc.submit(spec, [](const JobResult&) {}).has_value());
  EXPECT_NE(rejectionFor(svc, spec).find("dup"), std::string::npos);
  svc.cancelAll();
  svc.drain();
}

TEST(ServeService, WarmJobMatchesColdJobByteForByte) {
  obs::Registry registry;
  AnalysisService::Config cfg;
  cfg.metrics = &registry;
  AnalysisService svc(cfg);
  std::vector<JobResult> results;
  for (const char* id : {"cold", "warm"}) {
    auto spec = relaySpec(id);
    spec.wantWitness = true;
    ASSERT_FALSE(
        svc.submit(spec, [&](const JobResult& r) { results.push_back(r); })
            .has_value());
  }
  svc.drain();
  ASSERT_EQ(results.size(), 2u);
  const auto& cold = results[0];
  const auto& warm = results[1];
  EXPECT_EQ(cold.id, "cold");
  EXPECT_EQ(warm.id, "warm");
  EXPECT_EQ(cold.state, JobState::Done);
  EXPECT_EQ(warm.state, JobState::Done);
  EXPECT_EQ(cold.cache, CacheOutcome::Cold);
  EXPECT_EQ(warm.cache, CacheOutcome::Warm);
  // The warm verdict is bit-identical to the cold one.
  EXPECT_EQ(warm.summary, cold.summary);
  EXPECT_EQ(warm.states, cold.states);
  EXPECT_EQ(warm.witnessActions, cold.witnessActions);
  EXPECT_EQ(warm.witness, cold.witness);
  EXPECT_EQ(warm.exitCode, cold.exitCode);
  EXPECT_FALSE(cold.summary.empty());
  EXPECT_FALSE(cold.witness.empty());
  // And the pool counted one build + one reuse.
  EXPECT_EQ(svc.cacheStats().builds, 1u);
  EXPECT_EQ(svc.cacheStats().reuses, 1u);
  // serve.* counters flushed into the registry.
  const auto snap = registry.counters();
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [k, v] : snap) {
      if (k == name) return v;
    }
    return 0;
  };
  EXPECT_EQ(counter("serve.jobs.submitted"), 2u);
  EXPECT_EQ(counter("serve.jobs.completed"), 2u);
  EXPECT_EQ(counter("serve.cache.context_builds"), 1u);
  EXPECT_EQ(counter("serve.cache.context_reuses"), 1u);
}

TEST(ServeService, DisabledCacheRunsEveryJobCold) {
  AnalysisService::Config cfg;
  cfg.cacheContexts = 0;
  AnalysisService svc(cfg);
  std::vector<JobResult> results;
  for (const char* id : {"a", "b"}) {
    ASSERT_FALSE(
        svc.submit(relaySpec(id),
                   [&](const JobResult& r) { results.push_back(r); })
            .has_value());
  }
  svc.drain();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].cache, CacheOutcome::Cold);
  EXPECT_EQ(results[1].cache, CacheOutcome::Cold);
  EXPECT_EQ(results[0].summary, results[1].summary);
  EXPECT_EQ(svc.cacheStats().builds, 0u);
}

TEST(ServeService, HigherPriorityJobsFinishFirst) {
  AnalysisService svc(AnalysisService::Config{});  // one worker: serialized
  std::vector<std::string> finished;
  auto submit = [&](const std::string& id, int priority) {
    auto spec = relaySpec(id);
    spec.priority = priority;
    ASSERT_FALSE(
        svc.submit(spec,
                   [&](const JobResult& r) { finished.push_back(r.id); })
            .has_value());
  };
  submit("low", -5);
  submit("high", 5);
  submit("mid", 0);
  svc.drain();
  EXPECT_EQ(finished, (std::vector<std::string>{"high", "mid", "low"}));
}

TEST(ServeService, CancelBeforeFirstTickYieldsCancelledResult) {
  AnalysisService svc(AnalysisService::Config{});
  std::vector<JobResult> results;
  ASSERT_FALSE(
      svc.submit(relaySpec("doomed"),
                 [&](const JobResult& r) { results.push_back(r); })
          .has_value());
  EXPECT_TRUE(svc.cancel("doomed"));
  EXPECT_FALSE(svc.cancel("nosuch"));
  svc.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state, JobState::Cancelled);
  // The id is live no more: it is reusable and un-cancellable.
  EXPECT_FALSE(svc.cancel("doomed"));
  EXPECT_TRUE(svc.liveJobs().empty());
}

TEST(ServeService, LiveJobsReportsQueuedState) {
  AnalysisService svc(AnalysisService::Config{});
  ASSERT_FALSE(
      svc.submit(relaySpec("waiting"), [](const JobResult&) {}).has_value());
  const auto live = svc.liveJobs();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].id, "waiting");
  EXPECT_EQ(live[0].candidate, "relay");
  EXPECT_EQ(live[0].state, JobState::Queued);
  svc.cancelAll();
  svc.drain();
}

}  // namespace
}  // namespace boosting::serve
