// Generic contract checks for the system model's assumptions, applied to
// every system in the repository (see contract_test.cpp):
//
//   * Determinism (Section 3.1): enabledAction per task is a pure,
//     repeatable function of the state, and applying it to equal states
//     yields equal states.
//   * Value semantics: cloning a state yields an equal state with an equal
//     hash; hashes are stable across calls.
//   * Input-enabledness of processes (Section 2.2.1): every process task
//     is applicable in every reachable state.
//   * Locally controlled actions have correct ownership: process tasks
//     yield process-local actions of the right endpoint, service tasks
//     yield service-local actions of the right component.
#pragma once

#include <gtest/gtest.h>

#include "ioa/system.h"
#include "util/rng.h"

namespace boosting::testing {

inline void checkStateValueSemantics(const ioa::SystemState& s) {
  ioa::SystemState copy(s);
  ASSERT_TRUE(copy.equals(s));
  ASSERT_TRUE(s.equals(copy));
  ASSERT_EQ(copy.hash(), s.hash());
  ASSERT_EQ(s.hash(), s.hash());
}

inline void checkDeterminism(const ioa::System& sys,
                             const ioa::SystemState& s) {
  for (const ioa::TaskId& t : sys.allTasks()) {
    auto a1 = sys.enabled(s, t);
    auto a2 = sys.enabled(s, t);
    ASSERT_EQ(a1.has_value(), a2.has_value()) << t.str();
    if (!a1) continue;
    ASSERT_EQ(*a1, *a2) << t.str();
    // Ownership discipline.
    if (t.owner == ioa::TaskOwner::Process) {
      ASSERT_TRUE(a1->isProcessLocal()) << a1->str();
      ASSERT_EQ(a1->endpoint, t.component) << a1->str();
    } else {
      ASSERT_TRUE(a1->isServiceLocal()) << a1->str();
      ASSERT_EQ(a1->component, t.component) << a1->str();
    }
    // Applying the same action to equal states gives equal states.
    ioa::SystemState s1(s), s2(s);
    sys.applyInPlace(s1, *a1);
    sys.applyInPlace(s2, *a1);
    ASSERT_TRUE(s1.equals(s2)) << "nondeterministic apply for " << a1->str();
    ASSERT_EQ(s1.hash(), s2.hash());
  }
}

inline void checkProcessTasksApplicable(const ioa::System& sys,
                                        const ioa::SystemState& s) {
  for (int i = 0; i < sys.processCount(); ++i) {
    ASSERT_TRUE(sys.enabled(s, ioa::TaskId::process(i)).has_value())
        << "process " << i << " has no enabled locally controlled action";
  }
}

// Random-walk the system for `steps` locally controlled transitions,
// checking the full contract at every visited state. Environment events
// (inits for all endpoints, one failure) are injected along the way so
// post-input and post-failure states are covered too.
inline void checkSystemContract(const ioa::System& sys, std::uint64_t seed,
                                int steps, bool injectInits = true,
                                bool injectFailure = true) {
  util::Rng rng(seed);
  ioa::SystemState s = sys.initialState();
  for (int k = 0; k < steps; ++k) {
    if (injectInits && k == 2) {
      for (int i = 0; i < sys.processCount(); ++i) {
        sys.injectInit(s, i, util::Value(static_cast<int>((seed + i) % 2)));
      }
    }
    if (injectFailure && k == steps / 2 && sys.processCount() > 1) {
      sys.injectFail(s, static_cast<int>(seed % sys.processCount()));
    }
    checkStateValueSemantics(s);
    checkProcessTasksApplicable(sys, s);
    checkDeterminism(sys, s);

    std::vector<ioa::Action> enabled;
    for (const ioa::TaskId& t : sys.allTasks()) {
      if (auto a = sys.enabled(s, t)) enabled.push_back(std::move(*a));
    }
    ASSERT_FALSE(enabled.empty());
    sys.applyInPlace(s, enabled[rng.nextBelow(enabled.size())]);
  }
}

}  // namespace boosting::testing
