// Lemma 4: the canonical initialization chain alpha_0 .. alpha_n and the
// existence of a bivalent initialization.
#include "analysis/bivalence.h"

#include <gtest/gtest.h>

#include "processes/relay_consensus.h"
#include "processes/tob_consensus.h"

namespace boosting::analysis {
namespace {

using processes::buildRelayConsensusSystem;
using processes::buildTOBConsensusSystem;
using processes::RelaySystemSpec;

std::unique_ptr<ioa::System> relay(int n, int f) {
  RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = false;
  return buildRelayConsensusSystem(spec);
}

TEST(Bivalence, CanonicalInitializationSetsPrefixOnes) {
  auto sys = relay(3, 0);
  ioa::SystemState s = canonicalInitialization(*sys, 2);
  for (int i = 0; i < 3; ++i) {
    const auto& ps =
        processes::ProcessBase::stateOf(s.part(sys->slotForProcess(i)));
    EXPECT_EQ(ps.input, util::Value(i < 2 ? 1 : 0));
  }
}

TEST(Bivalence, ChainHasNPlusOneEntries) {
  auto sys = relay(3, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto result = findBivalentInitialization(g, va);
  EXPECT_EQ(result.initializations.size(), 4u);
  EXPECT_EQ(result.initializations.front().onesPrefix, 0);
  EXPECT_EQ(result.initializations.back().onesPrefix, 3);
}

TEST(Bivalence, EndpointsOfChainAreUnivalentByValidity) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto result = findBivalentInitialization(g, va);
  EXPECT_EQ(result.initializations.front().valence, Valence::Zero);
  EXPECT_EQ(result.initializations.back().valence, Valence::One);
}

TEST(Bivalence, RelayHasBivalentInitialization) {
  for (auto [n, f] : {std::pair{2, 0}, std::pair{3, 0}, std::pair{3, 1}}) {
    auto sys = relay(n, f);
    StateGraph g(*sys);
    ValenceAnalyzer va(g);
    auto result = findBivalentInitialization(g, va);
    ASSERT_TRUE(result.bivalent.has_value()) << "n=" << n << " f=" << f;
    EXPECT_EQ(result.bivalent->valence, Valence::Bivalent);
    // The bivalent initialization is a mixed one.
    EXPECT_GT(result.bivalent->onesPrefix, 0);
    EXPECT_LT(result.bivalent->onesPrefix, n + 1);
    EXPECT_FALSE(result.adjacentOppositePair.has_value());
  }
}

TEST(Bivalence, TOBCandidateHasBivalentInitialization) {
  processes::TOBConsensusSpec spec;
  spec.processCount = 2;
  spec.serviceResilience = 0;
  auto sys = buildTOBConsensusSystem(spec);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto result = findBivalentInitialization(g, va);
  ASSERT_TRUE(result.bivalent.has_value());
}

TEST(Bivalence, BridgeCandidateHasBivalentInitialization) {
  processes::BridgeSystemSpec spec;
  auto sys = processes::buildBridgeConsensusSystem(spec);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto result = findBivalentInitialization(g, va);
  ASSERT_TRUE(result.bivalent.has_value());
}

TEST(Bivalence, ValencesAreMonotoneAlongTheChain) {
  // As more processes propose 1, decide(1) can only become "more"
  // reachable; the recorded chain should never jump from One back to Zero
  // without passing adjacent classification. (Weak sanity check on the
  // chain structure: first is Zero, last is One.)
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto result = findBivalentInitialization(g, va);
  EXPECT_EQ(result.initializations.front().valence, Valence::Zero);
  EXPECT_EQ(result.initializations.back().valence, Valence::One);
}

}  // namespace
}  // namespace boosting::analysis
