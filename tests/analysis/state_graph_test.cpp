// StateGraph: canonical interning, deterministic per-task successors
// (Section 3.1's "task sequence determines the execution"), parent-path
// reconstruction.
#include "analysis/state_graph.h"

#include <gtest/gtest.h>

#include "analysis/bivalence.h"
#include "processes/relay_consensus.h"

namespace boosting::analysis {
namespace {

using processes::buildRelayConsensusSystem;
using processes::RelaySystemSpec;

std::unique_ptr<ioa::System> relay(int n, int f) {
  RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = false;
  return buildRelayConsensusSystem(spec);
}

TEST(StateGraph, InternCanonicalizesEqualStates) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  NodeId a = g.intern(sys->initialState());
  NodeId b = g.intern(sys->initialState());
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.size(), 1u);
}

TEST(StateGraph, InternDistinguishesDifferentStates) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  NodeId a = g.intern(sys->initialState());
  NodeId b = g.intern(canonicalInitialization(*sys, 1));
  EXPECT_NE(a, b);
  EXPECT_EQ(g.size(), 2u);
}

TEST(StateGraph, SuccessorsOnePerApplicableTask) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  const EdgeList edges = g.successors(root);
  // Only the two process tasks are applicable initially (service buffers
  // are empty, failure-free so no dummies).
  EXPECT_EQ(edges.size(), 2u);
  for (const EdgeView e : edges) {
    EXPECT_EQ(e.task.owner, ioa::TaskOwner::Process);
    EXPECT_EQ(e.action.kind, ioa::ActionKind::Invoke);
  }
}

TEST(StateGraph, SuccessorsAreCached) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  const EdgeList e1 = g.successors(root);
  const EdgeList e2 = g.successors(root);
  // Second call returns a view over the same arena storage: no recompute.
  EXPECT_EQ(e1.data(), e2.data());
  EXPECT_EQ(e1.size(), e2.size());
  ASSERT_TRUE(g.cachedSuccessors(root));
  EXPECT_EQ(g.cachedSuccessors(root)->data(), e1.data());
}

TEST(StateGraph, SuccessorViaFindsTaskEdge) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  auto edge = g.successorVia(root, ioa::TaskId::process(0));
  ASSERT_TRUE(edge);
  EXPECT_EQ(edge->action.endpoint, 0);
  // Service perform task not applicable yet.
  EXPECT_FALSE(g.successorVia(root, ioa::TaskId::servicePerform(100, 0)));
}

TEST(StateGraph, SelfLoopsForNoOpSteps) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  // Without inits, process tasks are dummies: self-loop edges.
  NodeId root = g.intern(sys->initialState());
  for (const EdgeView e : g.successors(root)) {
    EXPECT_EQ(e.to, root);
    EXPECT_EQ(e.action.kind, ioa::ActionKind::ProcDummy);
  }
}

TEST(StateGraph, PathToReconstructsDiscoveryPath) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  // Expand two levels.
  NodeId mid = g.successors(root)[0].to;
  NodeId leaf = kNoNode;
  for (const EdgeView e : g.successors(mid)) {
    if (e.to != mid) {
      leaf = e.to;
      break;
    }
  }
  ASSERT_NE(leaf, kNoNode);
  auto path = g.pathTo(leaf);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path.back().to, leaf);
  EXPECT_EQ(g.rootOf(leaf), root);
  // Replaying the path from the root state reaches the leaf state.
  ioa::SystemState s = g.state(root);
  for (const Edge& e : path) sys->applyInPlace(s, e.action);
  EXPECT_TRUE(s.equals(g.state(leaf)));
}

TEST(StateGraph, RootHasEmptyPath) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  NodeId root = g.intern(canonicalInitialization(*sys, 0));
  EXPECT_TRUE(g.pathTo(root).empty());
  EXPECT_EQ(g.rootOf(root), root);
}

TEST(StateGraph, FullReachableSetIsFinite) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  // Exhaustive BFS terminates: the candidate has a finite failure-free
  // reachable configuration space.
  std::vector<NodeId> frontier{root};
  std::set<NodeId> seen{root};
  while (!frontier.empty()) {
    NodeId x = frontier.back();
    frontier.pop_back();
    for (const EdgeView e : g.successors(x)) {
      if (seen.insert(e.to).second) frontier.push_back(e.to);
    }
    ASSERT_LT(g.size(), 100000u);
  }
  EXPECT_GT(seen.size(), 10u);
  EXPECT_LT(seen.size(), 10000u);
}

}  // namespace
}  // namespace boosting::analysis
