// Theorem 10: systems containing failure-AWARE services connected to all
// processes cannot boost resilience either -- and the all-process
// connection assumption is necessary (the pairwise construction of
// Section 6.3 does boost, see rotating_consensus_test.cpp).
#include <gtest/gtest.h>

#include "analysis/adversary.h"
#include "analysis/bivalence.h"
#include "processes/rotating_consensus.h"
#include "sim/properties.h"
#include "sim/runner.h"

namespace boosting::analysis {
namespace {

using processes::buildSingleFDRotatingConsensusSystem;
using processes::SingleFDConsensusSpec;

std::unique_ptr<ioa::System> doomed(int n, int f,
                                    services::DummyPolicy policy =
                                        services::DummyPolicy::PreferDummy) {
  SingleFDConsensusSpec spec;
  spec.processCount = n;
  spec.fdResilience = f;
  spec.policy = policy;
  return buildSingleFDRotatingConsensusSystem(spec);
}

TEST(Theorem10, CandidateSolvesFResilientConsensus) {
  // Within the detector's resilience the system is a correct consensus
  // implementation: the claim being refuted is only the f+1 level.
  auto sys = doomed(3, 1, services::DummyPolicy::PreferDummy);
  for (unsigned mask = 0; mask < 8; ++mask) {
    for (int failed = -1; failed < 3; ++failed) {  // at most f = 1 failure
      sim::RunConfig cfg;
      cfg.inits = sim::binaryInits(3, mask);
      if (failed >= 0) cfg.failures = {{3, failed}};
      cfg.maxSteps = 60000;
      auto r = sim::run(*sys, cfg);
      ASSERT_TRUE(r.allDecided()) << "mask=" << mask << " failed=" << failed;
      auto verdict = sim::checkConsensus(r);
      EXPECT_TRUE(verdict) << verdict.detail;
    }
  }
}

TEST(Theorem10, AdversaryRefutesBoostedClaimTwoProcesses) {
  auto sys = doomed(2, 0);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  cfg.exemptFailureAware = true;  // Theorem-10 similarity relations
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
      << report.summary();
  EXPECT_LE(report.witnessFailures.size(), 1u);
}

TEST(Theorem10, AdversaryRefutesBoostedClaimThreeProcesses) {
  auto sys = doomed(3, 0);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  cfg.exemptFailureAware = true;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
      << report.summary();
}

TEST(Theorem10, SilencedDetectorStarvesWaiters) {
  // Direct construction of the gamma scenario: fail the round-0
  // coordinator; with the single f = 0 detector silenced, the waiter can
  // neither read EST[0] nor suspect P0 -- a certified fair livelock.
  auto sys = doomed(2, 0);
  sim::RunConfig cfg;
  cfg.inits = sim::binaryInits(2, 0b01);
  cfg.failures = {{0, 0}};
  cfg.detectLivelock = true;
  auto r = sim::run(*sys, cfg);
  EXPECT_TRUE(r.livelocked());
  EXPECT_TRUE(r.decisions.empty());
}

TEST(Theorem10, PairwiseVersionSurvivesTheSameScenario) {
  // The necessity of the all-process-connection assumption: the SAME
  // protocol over pairwise 1-resilient detectors decides.
  processes::RotatingConsensusSpec spec;
  spec.processCount = 2;
  auto sys = processes::buildRotatingConsensusSystem(spec);
  sim::RunConfig cfg;
  cfg.inits = sim::binaryInits(2, 0b01);
  cfg.failures = {{0, 0}};
  cfg.maxSteps = 60000;
  auto r = sim::run(*sys, cfg);
  EXPECT_TRUE(r.allDecided());
  EXPECT_TRUE(sim::checkConsensus(r));
}

TEST(Theorem10, FailureAwareSimilarityIgnoresDetectorState) {
  // The Section-6.3 variant of j-similarity: general services may differ
  // arbitrarily.
  auto sys = doomed(2, 0);
  ioa::SystemState a = canonicalInitialization(*sys, 1);
  ioa::SystemState b = canonicalInitialization(*sys, 1);
  // Mutate only the detector's state in b.
  auto& fd = services::CanonicalGeneralService::stateOf(
      b.part(sys->slotForService(650)));
  fd.respBuf.begin()->second.push_back(util::sym("suspect",
                                                 util::Value::emptySet()));
  SimilarityOptions exempt;
  exempt.exemptFailureAware = true;
  EXPECT_TRUE(jSimilar(*sys, a, b, 0, exempt));
  EXPECT_TRUE(jSimilar(*sys, a, b, 1, exempt));
  EXPECT_TRUE(kSimilar(*sys, a, b, 500, exempt));
  // Without the exemption the difference (in endpoint 0's detector buffer)
  // is visible to every j except j = 0, whose buffers j-similarity ignores.
  EXPECT_FALSE(jSimilar(*sys, a, b, 1));
  EXPECT_TRUE(jSimilar(*sys, a, b, 0));
}

TEST(Theorem10, RefutationRobustWithoutExemption) {
  // Even with the plain (Theorem 2/9) similarity relations -- which may
  // fail to classify a hook touching the failure-aware detector -- the
  // adversary's fallback failure set still certifies the violation.
  auto sys = doomed(2, 0);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  cfg.exemptFailureAware = false;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
      << report.summary();
}

TEST(Theorem10, BuilderValidatesIdOrdering) {
  SingleFDConsensusSpec spec;
  spec.fdId = 100;
  spec.estBaseId = 500;
  EXPECT_THROW(buildSingleFDRotatingConsensusSystem(spec), std::logic_error);
  spec.processCount = 1;
  spec.fdId = 650;
  EXPECT_THROW(buildSingleFDRotatingConsensusSystem(spec), std::logic_error);
}

}  // namespace
}  // namespace boosting::analysis
