// The brute-force termination adversary: finds the f+1-failure livelock on
// every doomed candidate independently of the hook machinery, and -- the
// negative control -- finds NOTHING against genuinely resilient systems.
#include <gtest/gtest.h>

#include "analysis/adversary.h"
#include "processes/flooding_consensus.h"
#include "processes/relay_consensus.h"
#include "processes/rotating_consensus.h"
#include "processes/set_consensus_booster.h"

namespace boosting::analysis {
namespace {

TEST(TerminationSearch, FindsWitnessAgainstRelay) {
  processes::RelaySystemSpec spec;
  spec.processCount = 3;
  spec.objectResilience = 1;
  spec.addScratchRegister = false;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildRelayConsensusSystem(spec);
  auto report = searchTerminationCounterexample(*sys, 2);
  ASSERT_TRUE(report.counterexampleFound);
  EXPECT_EQ(report.failureSet.size(), 2u);  // f+1 failures are required
  EXPECT_FALSE(report.witness.empty());
  EXPECT_EQ(report.witness.failedEndpoints(), report.failureSet);
}

TEST(TerminationSearch, MinimalFailureCountRespectsResilience) {
  // With only f failures allowed, the relay candidate CANNOT be broken:
  // the search must come back empty at maxFailures = f.
  processes::RelaySystemSpec spec;
  spec.processCount = 3;
  spec.objectResilience = 1;
  spec.addScratchRegister = false;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildRelayConsensusSystem(spec);
  auto report = searchTerminationCounterexample(*sys, 1);
  EXPECT_FALSE(report.counterexampleFound);
  EXPECT_GT(report.runsDecided, 0u);
  EXPECT_EQ(report.runsDecided, report.runsTried);
}

TEST(TerminationSearch, FindsWitnessAgainstFlooding) {
  processes::FloodingConsensusSpec spec;
  spec.processCount = 3;
  spec.channelResilience = 0;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildFloodingConsensusSystem(spec);
  auto report = searchTerminationCounterexample(*sys, 1);
  ASSERT_TRUE(report.counterexampleFound);
  EXPECT_EQ(report.failureSet.size(), 1u);
}

TEST(TerminationSearch, NegativeControlRotatingConsensus) {
  // The Section-6.3 system genuinely tolerates n-1 failures: the search
  // must certify every run decided.
  processes::RotatingConsensusSpec spec;
  spec.processCount = 3;
  auto sys = processes::buildRotatingConsensusSystem(spec);
  auto report = searchTerminationCounterexample(*sys, 2);
  EXPECT_FALSE(report.counterexampleFound);
  EXPECT_EQ(report.runsDecided, report.runsTried);
  EXPECT_GT(report.runsTried, 20u);  // 6 failure sets x 4 initializations
}

TEST(TerminationSearch, NegativeControlSetConsensusBooster) {
  // Wait-free 2-set consensus: all runs decide under every failure set.
  // (The checker here is termination, not agreement; the k-set sweeps are
  // in set_consensus_test.cpp.)
  processes::SetConsensusBoosterSpec spec;
  spec.processCount = 4;
  spec.groups = 2;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildSetConsensusBoosterSystem(spec);
  auto report = searchTerminationCounterexample(*sys, 3);
  EXPECT_FALSE(report.counterexampleFound);
  EXPECT_EQ(report.runsDecided, report.runsTried);
}

TEST(TerminationSearch, AgreesWithProofGuidedEngine) {
  // Both adversaries refute the same candidate with the same number of
  // failures.
  processes::RelaySystemSpec spec;
  spec.processCount = 2;
  spec.objectResilience = 0;
  spec.addScratchRegister = false;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildRelayConsensusSystem(spec);

  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto guided = analyzeConsensusCandidate(*sys, cfg);
  auto brute = searchTerminationCounterexample(*sys, 1);
  ASSERT_EQ(guided.verdict, AdversaryReport::Verdict::TerminationViolation);
  ASSERT_TRUE(brute.counterexampleFound);
  EXPECT_EQ(guided.witnessFailures.size(), brute.failureSet.size());
}

TEST(TerminationSearch, ValidatesArguments) {
  processes::RelaySystemSpec spec;
  spec.processCount = 2;
  auto sys = processes::buildRelayConsensusSystem(spec);
  EXPECT_THROW(searchTerminationCounterexample(*sys, 0), std::logic_error);
  EXPECT_THROW(searchTerminationCounterexample(*sys, 2), std::logic_error);
}

}  // namespace
}  // namespace boosting::analysis
