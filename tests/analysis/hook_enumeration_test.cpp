// Exhaustive Fig.-2 scan: hook density, and cross-validation of the
// directed Fig.-3 search against the full enumeration.
#include <gtest/gtest.h>

#include "analysis/bivalence.h"
#include "analysis/hook.h"
#include "processes/relay_consensus.h"

namespace boosting::analysis {
namespace {

using processes::buildRelayConsensusSystem;
using processes::RelaySystemSpec;

std::unique_ptr<ioa::System> relay(int n, int f) {
  RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = false;
  return buildRelayConsensusSystem(spec);
}

TEST(HookEnumeration, FindsHooksInRelayGraph) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto biv = findBivalentInitialization(g, va);
  ASSERT_TRUE(biv.bivalent);
  auto all = enumerateHooks(g, va, biv.bivalent->node);
  EXPECT_GT(all.hooks.size(), 0u);
  EXPECT_GT(all.bivalentNodes, 0u);
  EXPECT_GE(all.nodesScanned, all.bivalentNodes);
}

TEST(HookEnumeration, EveryEnumeratedHookIsGenuine) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto biv = findBivalentInitialization(g, va);
  auto all = enumerateHooks(g, va, biv.bivalent->node);
  for (const Hook& h : all.hooks) {
    EXPECT_TRUE(isGenuineHook(g, va, h));
  }
}

TEST(HookEnumeration, DirectedSearchResultIsGenuine) {
  for (auto [n, f] : {std::pair{2, 0}, std::pair{3, 0}, std::pair{3, 1}}) {
    auto sys = relay(n, f);
    StateGraph g(*sys);
    ValenceAnalyzer va(g);
    auto biv = findBivalentInitialization(g, va);
    auto outcome = findHook(g, va, biv.bivalent->node);
    ASSERT_TRUE(outcome.hook) << "n=" << n << " f=" << f;
    EXPECT_TRUE(isGenuineHook(g, va, *outcome.hook)) << "n=" << n << " f=" << f;
  }
}

TEST(HookEnumeration, MaxHooksBudgetRespected) {
  auto sys = relay(3, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto biv = findBivalentInitialization(g, va);
  auto capped = enumerateHooks(g, va, biv.bivalent->node, 3);
  EXPECT_LE(capped.hooks.size(), 3u);
}

TEST(HookEnumeration, BothOrientationsOccur) {
  // Hooks exist with e(alpha) 0-valent and with e(alpha) 1-valent: the
  // pattern is symmetric in the decision labels.
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto biv = findBivalentInitialization(g, va);
  auto all = enumerateHooks(g, va, biv.bivalent->node);
  bool zeroFirst = false, oneFirst = false;
  for (const Hook& h : all.hooks) {
    if (h.alpha0Valence == Valence::Zero) zeroFirst = true;
    if (h.alpha0Valence == Valence::One) oneFirst = true;
  }
  EXPECT_TRUE(zeroFirst);
  EXPECT_TRUE(oneFirst);
}

TEST(HookEnumeration, GenuineRejectsCorruptedHook) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto biv = findBivalentInitialization(g, va);
  auto outcome = findHook(g, va, biv.bivalent->node);
  ASSERT_TRUE(outcome.hook);
  Hook broken = *outcome.hook;
  broken.ePrime = broken.e;  // violates Claim 1
  EXPECT_FALSE(isGenuineHook(g, va, broken));
  Hook swapped = *outcome.hook;
  std::swap(swapped.alpha0, swapped.alpha1);  // endpoints mismatched
  EXPECT_FALSE(isGenuineHook(g, va, swapped));
}

}  // namespace
}  // namespace boosting::analysis
