// Differential battery for out-of-core exploration (DESIGN.md "Out-of-core
// exploration"): the edge-arena cold tier (Pager) and the frontier spill
// (SpilledFrontier) are STORAGE changes only -- demotion remaps sealed
// chunks read-only at the same address with identical bytes, and the spill
// FIFO preserves pop order exactly -- so a run under a memory budget must
// be bit-identical to the unbounded run: same node ids, same compact edge
// triples, same action intern indices, same witness paths. Three tiers:
//   1. unit tests of the pager (demote preserves contents at the same
//      address, LRU eviction/refault accounting, failure seams are
//      all-or-nothing) and of the spilled frontier (exact FIFO order
//      against a plain-deque oracle under a randomized interleaving);
//   2. graph bit-identity: unbounded vs budgeted runs across the
//      (threads x shards) matrix, with and without symmetry/POR, with
//      chunk geometry and frontier thresholds forced small enough that
//      demotions, evictions, refaults and frontier segments all happen;
//   3. fault injection via the SpillConfig seams: a failing demote or
//      eviction aborts the exploration gracefully (exception propagates,
//      checkConsistent holds, serial and parallel engines both), and the
//      dedicated spill directory stays empty throughout -- spill files are
//      unlinked at creation, so nothing can leak.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <deque>
#include <filesystem>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/bivalence.h"
#include "analysis/pager.h"
#include "analysis/parallel_explorer.h"
#include "analysis/state_graph.h"
#include "analysis/symmetry.h"
#include "analysis/por.h"
#include "processes/flooding_consensus.h"
#include "processes/relay_consensus.h"

namespace boosting::analysis {
namespace {

std::unique_ptr<ioa::System> relayFixture(int n, int f) {
  processes::RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildRelayConsensusSystem(spec);
}

std::unique_ptr<ioa::System> floodingFixture(int n, int f) {
  processes::FloodingConsensusSpec spec;
  spec.processCount = n;
  spec.channelResilience = f;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildFloodingConsensusSystem(spec);
}

// A dedicated spill directory per test so the no-leaked-files property is
// checkable: spill files are unlinked at creation, so the directory must
// be empty at every observable point.
class SpillDir {
 public:
  SpillDir() {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("spill_test_" + std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~SpillDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string path() const { return dir_.string(); }
  std::size_t visibleFiles() const {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& e :
         std::filesystem::directory_iterator(dir_)) {
      ++n;
    }
    return n;
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Tier 1a: Pager unit tests.

TEST(Pager, DemotePreservesContentsAtTheSameAddress) {
  SpillDir dir;
  Pager::Config cfg;
  cfg.budgetBytes = 1 << 20;
  cfg.chunkBytes = 4096;
  cfg.spillDir = dir.path();
  Pager pager(cfg);
  auto* chunk = static_cast<std::uint32_t*>(pager.allocChunk());
  ASSERT_NE(chunk, nullptr);
  for (std::uint32_t i = 0; i < 1024; ++i) chunk[i] = 0x9e3779b9u * (i + 1);
  const std::uint32_t coldId = pager.demote(chunk);
  EXPECT_EQ(coldId, 0u);
  // Same address, same bytes: every pre-demotion pointer stays valid and
  // reads identical data -- the whole determinism argument.
  for (std::uint32_t i = 0; i < 1024; ++i) {
    ASSERT_EQ(chunk[i], 0x9e3779b9u * (i + 1)) << i;
  }
  EXPECT_EQ(pager.stats().chunksCold, 1u);
  EXPECT_EQ(pager.stats().bytesOnDisk, 4096u);
  EXPECT_EQ(dir.visibleFiles(), 0u) << "spill file must be unlinked";
}

TEST(Pager, LruEvictsOverBudgetAndRefaultsOnTouch) {
  SpillDir dir;
  Pager::Config cfg;
  cfg.budgetBytes = 2 * 4096;  // maxHot = 2 resident cold chunks
  cfg.chunkBytes = 4096;
  cfg.spillDir = dir.path();
  Pager pager(cfg);
  ASSERT_EQ(pager.maxHotChunks(), 2u);
  std::vector<std::uint8_t*> chunks;
  for (int c = 0; c < 4; ++c) {
    auto* p = static_cast<std::uint8_t*>(pager.allocChunk());
    std::memset(p, 0x40 + c, 4096);
    chunks.push_back(p);
    EXPECT_EQ(pager.demote(p), static_cast<std::uint32_t>(c));
  }
  // 4 demoted, budget keeps 2 resident: the 2 oldest were evicted.
  EXPECT_EQ(pager.stats().chunksCold, 4u);
  EXPECT_EQ(pager.stats().evictions, 2u);
  EXPECT_EQ(pager.residentCold(), 2u);
  // Touching an evicted chunk is a fault (and re-evicts the now-coldest);
  // touching a resident one is not. Contents are intact either way.
  const std::uint64_t faultsBefore = pager.stats().faults;
  pager.touchCold(0);  // evicted -> refault
  EXPECT_EQ(pager.stats().faults, faultsBefore + 1);
  pager.touchCold(0);  // now resident -> recency update only
  EXPECT_EQ(pager.stats().faults, faultsBefore + 1);
  for (int c = 0; c < 4; ++c) {
    for (std::size_t i = 0; i < 4096; i += 509) {
      ASSERT_EQ(chunks[c][i], 0x40 + c) << c << "/" << i;
    }
  }
  EXPECT_EQ(dir.visibleFiles(), 0u);
}

TEST(Pager, FailureSeamsThrowAndCountNothing) {
  SpillDir dir;
  {
    Pager::Config cfg;
    cfg.budgetBytes = 1 << 20;
    cfg.chunkBytes = 4096;
    cfg.spillDir = dir.path();
    cfg.failDemoteAfter = 2;  // second demote attempt throws
    Pager pager(cfg);
    void* a = pager.allocChunk();
    void* b = pager.allocChunk();
    EXPECT_EQ(pager.demote(a), 0u);
    EXPECT_THROW(pager.demote(b), std::runtime_error);
    // All-or-nothing: the failed demote moved no counter.
    EXPECT_EQ(pager.stats().chunksCold, 1u);
    EXPECT_EQ(pager.stats().bytesOnDisk, 4096u);
  }
  {
    Pager::Config cfg;
    cfg.budgetBytes = 4096;  // floor maxHot = 2
    cfg.chunkBytes = 4096;
    cfg.spillDir = dir.path();
    cfg.failEvictAfter = 1;  // first eviction attempt throws
    Pager pager(cfg);
    std::vector<void*> chunks;
    for (int c = 0; c < 3; ++c) chunks.push_back(pager.allocChunk());
    EXPECT_EQ(pager.demote(chunks[0]), 0u);
    EXPECT_EQ(pager.demote(chunks[1]), 1u);
    EXPECT_THROW(pager.demote(chunks[2]), std::runtime_error);
    EXPECT_EQ(pager.stats().evictions, 0u);
  }
  EXPECT_EQ(dir.visibleFiles(), 0u) << "aborts must not leak spill files";
}

TEST(Pager, RejectsZeroBudgetOrChunk) {
  EXPECT_THROW(Pager(Pager::Config{}), std::invalid_argument);
  Pager::Config noChunk;
  noChunk.budgetBytes = 4096;
  EXPECT_THROW(Pager{noChunk}, std::invalid_argument);
}

TEST(OpenUnlinkedSpillFile, RejectsUnusableDirectory) {
  EXPECT_THROW(openUnlinkedSpillFile("/nonexistent/spill/dir"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Tier 1b: SpilledFrontier unit tests.

TEST(SpilledFrontier, ExactFifoAgainstDequeOracleUnderInterleaving) {
  SpillDir dir;
  // Tiny threshold/segments so segments constantly move to and from disk.
  SpilledFrontier fifo(/*spillThreshold=*/8, /*segmentEntries=*/4,
                       dir.path());
  std::deque<std::uint64_t> oracle;
  std::mt19937_64 rng(20260808);  // seed logged for replay
  std::uint64_t nextVal = 1;
  for (int step = 0; step < 20000; ++step) {
    const bool push = oracle.empty() || (rng() % 3 != 0);
    if (push) {
      fifo.push(nextVal);
      oracle.push_back(nextVal);
      ++nextVal;
    } else {
      std::uint64_t got = 0;
      ASSERT_TRUE(fifo.pop(&got)) << "step " << step;
      ASSERT_EQ(got, oracle.front()) << "FIFO order broken at step " << step;
      oracle.pop_front();
    }
    ASSERT_EQ(fifo.size(), oracle.size());
  }
  while (!oracle.empty()) {
    std::uint64_t got = 0;
    ASSERT_TRUE(fifo.pop(&got));
    ASSERT_EQ(got, oracle.front());
    oracle.pop_front();
  }
  std::uint64_t got = 0;
  EXPECT_FALSE(fifo.pop(&got));
  EXPECT_GT(fifo.stats().segmentsSpilled, 0u) << "threshold never engaged";
  EXPECT_LE(fifo.stats().segmentsReloaded, fifo.stats().segmentsSpilled);
  EXPECT_EQ(dir.visibleFiles(), 0u);
}

TEST(SpilledFrontier, ThresholdZeroNeverSpills) {
  SpilledFrontier fifo;  // plain in-memory queue
  for (std::uint64_t v = 0; v < 100000; ++v) fifo.push(v);
  for (std::uint64_t v = 0; v < 100000; ++v) {
    std::uint64_t got = 0;
    ASSERT_TRUE(fifo.pop(&got));
    ASSERT_EQ(got, v);
  }
  EXPECT_EQ(fifo.stats().segmentsSpilled, 0u);
  EXPECT_EQ(fifo.diskEntries(), 0u);
}

TEST(SpilledFrontier, ClearDropsMemoryAndDiskEntries) {
  SpillDir dir;
  SpilledFrontier fifo(4, 2, dir.path());
  for (std::uint64_t v = 0; v < 64; ++v) fifo.push(v);
  ASSERT_GT(fifo.diskEntries(), 0u);
  fifo.clear();
  EXPECT_TRUE(fifo.empty());
  EXPECT_EQ(fifo.diskEntries(), 0u);
  // Reusable after a clear, still FIFO.
  fifo.push(7);
  fifo.push(8);
  std::uint64_t got = 0;
  ASSERT_TRUE(fifo.pop(&got));
  EXPECT_EQ(got, 7u);
  EXPECT_EQ(dir.visibleFiles(), 0u);
}

// ---------------------------------------------------------------------------
// Tier 2: graph bit-identity, unbounded vs budgeted, across the matrix.

enum class Mode { Plain, Sym, SymPor };

const char* modeName(Mode m) {
  switch (m) {
    case Mode::Plain: return "plain";
    case Mode::Sym: return "sym";
    case Mode::SymPor: return "sym+por";
  }
  return "?";
}

struct Explored {
  std::unique_ptr<ioa::System> sys;
  std::unique_ptr<StateGraph> g;
  ExploreStats stats;
};

Explored explore(std::unique_ptr<ioa::System> sys, Mode mode,
                 const ExplorationPolicy& pol, const SpillConfig& spill) {
  Explored r;
  r.sys = std::move(sys);
  std::shared_ptr<const SymmetryPolicy> sym;
  std::shared_ptr<const PorPolicy> por;
  if (mode != Mode::Plain) {
    sym = SymmetryPolicy::forSystem(*r.sys, SymmetryMode::On);
  }
  if (mode == Mode::SymPor) por = PorPolicy::forSystem(*r.sys, PorMode::On);
  r.g = std::make_unique<StateGraph>(*r.sys, sym, por, spill);
  const NodeId root =
      r.g->intern(canonicalInitialization(*r.sys, r.sys->processCount() / 2));
  r.stats = exploreReachable(*r.g, root, pol);
  return r;
}

// Bit-identity of two explored graphs (the same checks the shard battery
// runs): node numbering, states, compact edge triples, witness paths, and
// the action pool itself. Spilled-vs-unbounded must pass all of it.
void expectGraphsBitIdentical(const StateGraph& gs, const StateGraph& gp,
                              const std::string& label) {
  ASSERT_EQ(gs.size(), gp.size()) << label;
  ASSERT_EQ(gs.actionPoolSize(), gp.actionPoolSize()) << label;
  for (NodeId id = 0; id < gs.size(); ++id) {
    ASSERT_TRUE(gs.state(id).equals(gp.state(id))) << label << " node " << id;
    EXPECT_EQ(gs.rootOf(id), gp.rootOf(id)) << label << " node " << id;
    const auto se = gs.cachedSuccessors(id);
    const auto pe = gp.cachedSuccessors(id);
    ASSERT_EQ(se.has_value(), pe.has_value()) << label << " node " << id;
    if (se) {
      ASSERT_EQ(se->size(), pe->size()) << label << " node " << id;
      for (std::size_t k = 0; k < se->size(); ++k) {
        const CompactEdge& a = se->data()[k];
        const CompactEdge& b = pe->data()[k];
        ASSERT_EQ(a.task, b.task) << label << " node " << id << " edge " << k;
        ASSERT_EQ(a.action, b.action)
            << label << " node " << id << " edge " << k;
        ASSERT_EQ(a.to, b.to) << label << " node " << id << " edge " << k;
      }
    }
    const auto sp = gs.pathTo(id);
    const auto pp = gp.pathTo(id);
    ASSERT_EQ(sp.size(), pp.size()) << label << " node " << id;
    for (std::size_t k = 0; k < sp.size(); ++k) {
      ASSERT_EQ(sp[k].task, pp[k].task) << label << " node " << id;
      ASSERT_EQ(sp[k].action, pp[k].action) << label << " node " << id;
      ASSERT_EQ(sp[k].to, pp[k].to) << label << " node " << id;
    }
  }
  for (std::uint32_t a = 0; a < gs.actionPoolSize(); ++a) {
    ASSERT_EQ(gs.actionAt(a), gp.actionAt(a)) << label << " action " << a;
  }
}

struct Cell {
  unsigned threads;
  unsigned shards;
  // Auto already pipelines at threads >= 2; the explicit cells pin the
  // pipelined-install x memory-budget composition (and the legacy
  // barrier path) independently of the Auto heuristic.
  PipelineMode pipeline = PipelineMode::Auto;
};

constexpr Cell kCells[] = {{1, 1},
                           {1, 4},
                           {2, 2},
                           {4, 4},
                           {2, 2, PipelineMode::On},
                           {4, 4, PipelineMode::Off}};

const char* pipeName(PipelineMode m) {
  switch (m) {
    case PipelineMode::Auto: return "auto";
    case PipelineMode::On: return "on";
    case PipelineMode::Off: return "off";
  }
  return "?";
}

// `expectEvictions` is false only for the sym+por fixture, whose reduced
// graph stays within the two-chunk LRU budget; eviction traffic is covered
// by the other modes and the Pager unit tests.
void runSpillMatrix(std::unique_ptr<ioa::System> (*build)(), Mode mode,
                    bool expectEvictions = true) {
  SpillDir dir;
  // Unbounded reference, serial.
  const Explored ref = explore(build(), mode, ExplorationPolicy{}, {});
  ASSERT_GT(ref.g->size(), 0u);
  // Geometry forced small so even the symmetry-reduced fixtures demote,
  // evict and refault: 64-edge chunks (one 4 KiB page each once rounded)
  // with a budget of two resident cold mappings, and a frontier threshold
  // far below the BFS frontier peak.
  SpillConfig spill;
  spill.memoryBudgetBytes = 2 * 4096;
  spill.spillDir = dir.path();
  spill.edgeChunkShift = 6;
  for (const Cell& c : kCells) {
    ExplorationPolicy pol;
    pol.threads = c.threads;
    pol.shards = c.shards;
    pol.pipeline = c.pipeline;
    pol.memoryBudgetBytes = spill.memoryBudgetBytes;
    pol.frontierSpillThreshold = 64;
    pol.spillDir = dir.path();
    const Explored cell = explore(build(), mode, pol, spill);
    const std::string label = std::string(modeName(mode)) + " budget t" +
                              std::to_string(c.threads) + "/s" +
                              std::to_string(c.shards) + "/p" +
                              pipeName(c.pipeline);
    EXPECT_EQ(ref.stats.statesDiscovered, cell.stats.statesDiscovered)
        << label;
    expectGraphsBitIdentical(*ref.g, *cell.g, label);
    ASSERT_TRUE(cell.g->spillActive()) << label;
    const Pager::Stats ps = cell.g->spillStats();
    EXPECT_GT(ps.chunksCold, 0u) << label << ": cold tier never engaged";
    if (expectEvictions) {
      EXPECT_GT(ps.evictions, 0u) << label << ": budget never forced eviction";
    }
    EXPECT_EQ(dir.visibleFiles(), 0u) << label;
  }
}

std::unique_ptr<ioa::System> relay31() { return relayFixture(3, 1); }
std::unique_ptr<ioa::System> flooding30() { return floodingFixture(3, 0); }

TEST(SpillEquivalence, BitIdenticalRelay31Plain) {
  runSpillMatrix(relay31, Mode::Plain);
}

TEST(SpillEquivalence, BitIdenticalRelay31Symmetry) {
  runSpillMatrix(relay31, Mode::Sym);
}

TEST(SpillEquivalence, BitIdenticalRelay31SymmetryPor) {
  runSpillMatrix(relay31, Mode::SymPor, /*expectEvictions=*/false);
}

TEST(SpillEquivalence, BitIdenticalFlooding30Symmetry) {
  runSpillMatrix(flooding30, Mode::Sym);
}

TEST(SpillEquivalence, FrontierSpillEngagesAndReportsStats) {
  SpillDir dir;
  ExplorationPolicy pol;
  pol.frontierSpillThreshold = 16;  // far below the BFS frontier peak
  pol.spillDir = dir.path();
  const Explored r = explore(relay31(), Mode::Plain, pol, {});
  EXPECT_GT(r.stats.frontierSpill.segmentsSpilled, 0u);
  EXPECT_LE(r.stats.frontierSpill.segmentsReloaded,
            r.stats.frontierSpill.segmentsSpilled);
  EXPECT_EQ(dir.visibleFiles(), 0u);
}

// ---------------------------------------------------------------------------
// Tier 3: fault injection through the SpillConfig seams.

TEST(SpillFaultInjection, FailingDemoteAbortsSerialExplorationCleanly) {
  SpillDir dir;
  auto sys = relayFixture(3, 1);
  SpillConfig spill;
  spill.memoryBudgetBytes = 2 * 4096;
  spill.spillDir = dir.path();
  spill.edgeChunkShift = 8;
  spill.failDemoteAfter = 3;
  StateGraph g(*sys, nullptr, nullptr, spill);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  EXPECT_THROW(exploreReachable(g, root, {}), std::runtime_error);
  // The failed demote committed nothing: the graph self-checks clean and
  // remains usable in its pre-failure extent.
  EXPECT_TRUE(g.checkConsistent());
  EXPECT_EQ(g.spillStats().chunksCold, 2u);
  EXPECT_EQ(dir.visibleFiles(), 0u);
}

TEST(SpillFaultInjection, FailingEvictionAbortsSerialExplorationCleanly) {
  SpillDir dir;
  auto sys = relayFixture(3, 1);
  SpillConfig spill;
  spill.memoryBudgetBytes = 2 * 4096;
  spill.spillDir = dir.path();
  spill.edgeChunkShift = 8;
  spill.failEvictAfter = 1;
  StateGraph g(*sys, nullptr, nullptr, spill);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  EXPECT_THROW(exploreReachable(g, root, {}), std::runtime_error);
  EXPECT_TRUE(g.checkConsistent());
  EXPECT_EQ(dir.visibleFiles(), 0u);
}

TEST(SpillFaultInjection, FailingDemoteAbortsParallelInstallCleanly) {
  SpillDir dir;
  auto sys = relayFixture(3, 1);
  SpillConfig spill;
  spill.memoryBudgetBytes = 2 * 4096;
  spill.spillDir = dir.path();
  spill.edgeChunkShift = 8;
  spill.failDemoteAfter = 3;
  StateGraph g(*sys, nullptr, nullptr, spill);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  ExplorationPolicy pol;
  pol.threads = 2;
  pol.shards = 2;
  pol.memoryBudgetBytes = spill.memoryBudgetBytes;
  pol.frontierSpillThreshold = 64;
  pol.spillDir = dir.path();
  // Phase 1 never touches the StateGraph; the demote failure fires during
  // the canonical install and must leave the graph self-consistent.
  EXPECT_THROW(exploreReachable(g, root, pol), std::runtime_error);
  EXPECT_TRUE(g.checkConsistent());
  EXPECT_EQ(dir.visibleFiles(), 0u);
}

TEST(SpillFaultInjection, UnusableSpillDirFailsGraphConstructionEagerly) {
  auto sys = relayFixture(2, 0);
  SpillConfig spill;
  spill.memoryBudgetBytes = 1 << 20;
  spill.spillDir = "/nonexistent/spill/dir";
  EXPECT_THROW(StateGraph(*sys, nullptr, nullptr, spill),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Checked-narrowing regressions: the former comment-only contract
// ("kEdgeChunkCapacity must exceed allTasks().size()") and the unchecked
// uint16_t task-index narrowing are now validated with runtime errors.

TEST(SpillConfigValidation, TaskCountMustFitSixteenBits) {
  EXPECT_THROW(StateGraph::validateTaskCapacity(1u << 16, 1u << 15),
               std::invalid_argument);
  EXPECT_NO_THROW(StateGraph::validateTaskCapacity(65535, 1u << 17));
}

TEST(SpillConfigValidation, ChunkMustHoldOneFullSuccessorList) {
  // taskCount == chunkCapacity cannot hold one full list (a run of
  // allTasks().size() edges must fit a single chunk).
  EXPECT_THROW(StateGraph::validateTaskCapacity(256, 256),
               std::invalid_argument);
  EXPECT_NO_THROW(StateGraph::validateTaskCapacity(255, 256));
}

TEST(SpillConfigValidation, ExplicitChunkShiftRangeChecked) {
  SpillConfig tooSmall;
  tooSmall.edgeChunkShift = 5;
  EXPECT_THROW(StateGraph::resolveEdgeChunkShift(tooSmall),
               std::invalid_argument);
  SpillConfig tooBig;
  tooBig.edgeChunkShift = 21;
  EXPECT_THROW(StateGraph::resolveEdgeChunkShift(tooBig),
               std::invalid_argument);
  SpillConfig fine;
  fine.edgeChunkShift = 8;
  EXPECT_EQ(StateGraph::resolveEdgeChunkShift(fine), 8u);
}

TEST(SpillConfigValidation, AutoChunkShiftScalesWithBudget) {
  SpillConfig unbounded;
  EXPECT_EQ(StateGraph::resolveEdgeChunkShift(unbounded), 15u);
  // Budgets pick the largest shift in [8, 15] with ~16 chunks of headroom,
  // so tiny bounded runs still seal and demote whole chunks.
  SpillConfig small;
  small.memoryBudgetBytes = 1 << 20;
  const std::uint32_t s = StateGraph::resolveEdgeChunkShift(small);
  EXPECT_GE(s, 8u);
  EXPECT_LT(s, 15u);
  SpillConfig huge;
  huge.memoryBudgetBytes = 1ull << 40;
  EXPECT_EQ(StateGraph::resolveEdgeChunkShift(huge), 15u);
}

}  // namespace
}  // namespace boosting::analysis
