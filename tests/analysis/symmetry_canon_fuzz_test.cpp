// Property/fuzz suite for orbit canonicalization: on random reachable
// states of the symmetric fixtures, canon must be (a) permutation-
// invariant -- canon(relabel(s, pi)) == canon(s) for every pi -- and
// (b) idempotent, while the transition function stays equivariant under
// relabeling (the assumption the quotient's soundness rests on). Runs
// under the TSan job via analysis_tests like the other fuzz suites.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "analysis/bivalence.h"
#include "analysis/symmetry.h"
#include "processes/flooding_consensus.h"
#include "processes/relay_consensus.h"
#include "util/rng.h"

namespace boosting::analysis {
namespace {

std::unique_ptr<ioa::System> relayFixture(int n) {
  processes::RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = 0;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildRelayConsensusSystem(spec);
}

std::unique_ptr<ioa::System> floodingFixture(int n) {
  processes::FloodingConsensusSpec spec;
  spec.processCount = n;
  spec.channelResilience = 0;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildFloodingConsensusSystem(spec);
}

ioa::SystemState canonOf(const SymmetryPolicy& pol,
                         const ioa::SystemState& s) {
  if (auto c = pol.canonicalize(s)) return std::move(c->state);
  return s;
}

std::vector<int> randomPerm(util::Rng& rng, int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.nextBelow(
        static_cast<std::uint64_t>(i) + 1));
    std::swap(p[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(j)]);
  }
  return p;
}

// Random fair-ish walk: sample reachable states by repeatedly firing a
// uniformly chosen enabled task from a random canonical initialization.
std::vector<ioa::SystemState> sampleStates(const ioa::System& sys,
                                           util::Rng& rng, int walks,
                                           int stepsPerWalk) {
  std::vector<ioa::SystemState> out;
  const auto& tasks = sys.allTasks();
  for (int w = 0; w < walks; ++w) {
    const int ones = static_cast<int>(
        rng.nextBelow(static_cast<std::uint64_t>(sys.processCount()) + 1));
    ioa::SystemState s = canonicalInitialization(sys, ones);
    out.push_back(s);
    for (int step = 0; step < stepsPerWalk; ++step) {
      // Reservoir-pick one enabled task uniformly.
      std::optional<ioa::Action> pick;
      std::uint64_t seen = 0;
      for (const ioa::TaskId& t : tasks) {
        if (auto a = sys.enabled(s, t)) {
          ++seen;
          if (rng.nextBelow(seen) == 0) pick = std::move(a);
        }
      }
      if (!pick) break;
      sys.applyInPlace(s, *pick);
      out.push_back(s);
    }
  }
  return out;
}

void checkCanonProperties(const ioa::System& sys, const SymmetryPolicy& pol,
                          util::Rng& rng, int permsPerState) {
  const auto states = sampleStates(sys, rng, /*walks=*/8, /*stepsPerWalk=*/20);
  ASSERT_FALSE(states.empty());
  for (const ioa::SystemState& s : states) {
    const ioa::SystemState canon = canonOf(pol, s);
    // Idempotence: a representative canonicalizes to itself.
    const auto again = pol.canonicalize(canon);
    if (again) {
      EXPECT_TRUE(again->state.equals(canon))
          << "canon not idempotent at\n" << s.str();
    }
    // The reported permutation really maps the input to the output, and
    // the COW hash cache survives the relabeling machinery intact.
    if (auto c = pol.canonicalize(s)) {
      EXPECT_TRUE(c->state.equals(pol.relabeled(s, c->perm)))
          << "CanonResult.perm inconsistent at\n" << s.str();
    }
    EXPECT_EQ(canon.hash(), canon.fullRehash());
    // Orbit invariance: every relabeling lands on the same representative.
    for (int k = 0; k < permsPerState; ++k) {
      const std::vector<int> pi = randomPerm(rng, sys.processCount());
      const ioa::SystemState relabeled = pol.relabeled(s, pi);
      EXPECT_TRUE(canonOf(pol, relabeled).equals(canon))
          << "canon(relabel(s, pi)) != canon(s) at\n" << s.str();
    }
  }
}

// Equivariance spot-check: relabel-then-step equals step-then-relabel.
// This is assumption (a)-(c) of analysis/symmetry.h, the load-bearing
// fact behind quotient soundness.
void checkEquivariance(const ioa::System& sys, const SymmetryPolicy& pol,
                       util::Rng& rng) {
  const auto states = sampleStates(sys, rng, /*walks=*/4, /*stepsPerWalk=*/12);
  for (const ioa::SystemState& s : states) {
    const std::vector<int> pi = randomPerm(rng, sys.processCount());
    const ioa::SystemState sp = pol.relabeled(s, pi);
    for (const ioa::TaskId& t : sys.allTasks()) {
      const auto a = sys.enabled(s, t);
      if (!a) continue;
      const ioa::Action ap = pol.relabelAction(*a, pi);
      const ioa::SystemState left = pol.relabeled(sys.apply(s, *a), pi);
      const ioa::SystemState right = sys.apply(sp, ap);
      EXPECT_TRUE(left.equals(right))
          << "equivariance broken for " << a->str() << " under relabeling";
    }
  }
}

TEST(SymmetryCanonFuzz, RelayN3IdFree) {
  auto sys = relayFixture(3);
  auto pol = SymmetryPolicy::forSystem(*sys, SymmetryMode::On);
  ASSERT_FALSE(pol->trivial()) << pol->disabledReason();
  util::Rng rng(0x5e1f5e1f5e1f5e1full);
  checkCanonProperties(*sys, *pol, rng, /*permsPerState=*/4);
}

TEST(SymmetryCanonFuzz, RelayN4IdFree) {
  auto sys = relayFixture(4);
  auto pol = SymmetryPolicy::forSystem(*sys, SymmetryMode::On);
  ASSERT_FALSE(pol->trivial()) << pol->disabledReason();
  util::Rng rng(0xfeedc0defeedc0deull);
  checkCanonProperties(*sys, *pol, rng, /*permsPerState=*/3);
}

TEST(SymmetryCanonFuzz, FloodingN3IdSensitive) {
  auto sys = floodingFixture(3);
  auto pol = SymmetryPolicy::forSystem(*sys, SymmetryMode::On);
  ASSERT_FALSE(pol->trivial()) << pol->disabledReason();
  ASSERT_EQ(pol->strategy(), ioa::ProcessSymmetry::IdSensitive);
  util::Rng rng(0x0ddba11c0ffee000ull);
  checkCanonProperties(*sys, *pol, rng, /*permsPerState=*/3);
}

TEST(SymmetryCanonFuzz, RelayEquivariance) {
  auto sys = relayFixture(3);
  auto pol = SymmetryPolicy::forSystem(*sys, SymmetryMode::On);
  ASSERT_FALSE(pol->trivial());
  util::Rng rng(0xabcdef0123456789ull);
  checkEquivariance(*sys, *pol, rng);
}

TEST(SymmetryCanonFuzz, FloodingEquivariance) {
  auto sys = floodingFixture(3);
  auto pol = SymmetryPolicy::forSystem(*sys, SymmetryMode::On);
  ASSERT_FALSE(pol->trivial());
  util::Rng rng(0x1234123412341234ull);
  checkEquivariance(*sys, *pol, rng);
}

TEST(SymmetryCanonFuzz, PermAlgebra) {
  util::Rng rng(42);
  for (int n : {1, 2, 3, 5, 7}) {
    for (int k = 0; k < 16; ++k) {
      const auto p = randomPerm(rng, n);
      const auto q = randomPerm(rng, n);
      EXPECT_TRUE(SymmetryPolicy::isIdentity(
          SymmetryPolicy::composePerm(SymmetryPolicy::invertPerm(p), p)));
      EXPECT_TRUE(SymmetryPolicy::isIdentity(
          SymmetryPolicy::composePerm(p, SymmetryPolicy::invertPerm(p))));
      // (p o q)^{-1} == q^{-1} o p^{-1}.
      EXPECT_EQ(SymmetryPolicy::invertPerm(SymmetryPolicy::composePerm(p, q)),
                SymmetryPolicy::composePerm(SymmetryPolicy::invertPerm(q),
                                            SymmetryPolicy::invertPerm(p)));
    }
    EXPECT_TRUE(SymmetryPolicy::isIdentity(SymmetryPolicy::identityPerm(n)));
  }
}

}  // namespace
}  // namespace boosting::analysis
