// The end-to-end impossibility engine (Theorems 2, 9, 10): for every
// candidate that claims to boost resilience, the adversary produces a
// concrete counterexample -- in these instances, always the theorem-
// predicted termination violation under f+1 failures (or failure-free).
#include "analysis/adversary.h"

#include <gtest/gtest.h>

#include "processes/relay_consensus.h"
#include "processes/tob_consensus.h"

namespace boosting::analysis {
namespace {

using processes::buildRelayConsensusSystem;
using processes::buildTOBConsensusSystem;
using processes::RelaySystemSpec;

std::unique_ptr<ioa::System> adversarialRelay(int n, int f,
                                              bool withRegister = false) {
  RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = withRegister;
  spec.policy = services::DummyPolicy::PreferDummy;  // the adversary's build
  return buildRelayConsensusSystem(spec);
}

TEST(Adversary, TheoremTwoOnTwoProcessRelay) {
  // f = 0 object, claim: 1-resilient consensus for 2 processes. This is
  // exactly the FLP instance of Theorem 2 (f = 0 generalizes [8]).
  auto sys = adversarialRelay(2, 0);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
      << report.summary();
  EXPECT_TRUE(report.bivalentInit.has_value());
  EXPECT_TRUE(report.hook.has_value());
  EXPECT_LE(report.witnessFailures.size(), 1u);
  EXPECT_FALSE(report.witness.empty());
}

TEST(Adversary, TheoremTwoOnThreeProcessRelayFZero) {
  auto sys = adversarialRelay(3, 0);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
      << report.summary();
}

TEST(Adversary, TheoremTwoOnThreeProcessRelayFOne) {
  // The genuinely-boosting case f = 1 -> claim 2: beyond FLP's reach, the
  // heart of Theorem 2.
  auto sys = adversarialRelay(3, 1);
  AdversaryConfig cfg;
  cfg.claimedFailures = 2;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
      << report.summary();
  EXPECT_EQ(report.witnessFailures.size(), 2u);  // J has f+1 = 2 processes
}

TEST(Adversary, TheoremTwoScalesAcrossNandF) {
  // The genuinely-boosting claims at larger sizes: every (n, f) pair is
  // refuted with exactly f+1 failures.
  for (auto [n, f] : {std::pair{4, 0}, std::pair{4, 2}, std::pair{5, 3}}) {
    auto sys = adversarialRelay(n, f);
    AdversaryConfig cfg;
    cfg.claimedFailures = f + 1;
    auto report = analyzeConsensusCandidate(*sys, cfg);
    EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
        << "n=" << n << " f=" << f << ": " << report.summary();
    EXPECT_EQ(static_cast<int>(report.witnessFailures.size()), f + 1);
  }
}

TEST(Adversary, WiderBridgeTopology) {
  processes::BridgeSystemSpec spec;
  spec.processCount = 4;
  spec.bridgeEndpoint = 1;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildBridgeConsensusSystem(spec);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
      << report.summary();
}

TEST(Adversary, WitnessContainsNoDecisionByCorrectProcess) {
  auto sys = adversarialRelay(2, 0);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  ASSERT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation);
  for (const ioa::Action& a : report.witness.actions()) {
    if (a.kind == ioa::ActionKind::EnvDecide) {
      EXPECT_TRUE(report.witnessFailures.count(a.endpoint))
          << "correct process decided in the witness: " << a.str();
    }
  }
}

TEST(Adversary, WitnessReplaysOnFreshSystem) {
  // The counterexample is a genuine execution: replaying its actions from
  // the initial state must not throw and must reproduce the failure set.
  auto sys = adversarialRelay(2, 0);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  ASSERT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation);
  ioa::SystemState s = sys->initialState();
  for (const ioa::Action& a : report.witness.actions()) {
    ASSERT_NO_THROW(sys->applyInPlace(s, a)) << a.str();
  }
  EXPECT_EQ(report.witness.failedEndpoints(), report.witnessFailures);
}

TEST(Adversary, RegisterPresenceDoesNotRescueTheClaim) {
  // Theorem 2 allows reliable registers alongside the f-resilient objects.
  auto sys = adversarialRelay(2, 0, /*withRegister=*/true);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
      << report.summary();
}

TEST(Adversary, ArbitraryConnectionPatternsCovered) {
  // The bridge candidate: two services with different endpoint sets.
  processes::BridgeSystemSpec spec;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildBridgeConsensusSystem(spec);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
      << report.summary();
}

TEST(Adversary, TheoremNineOnTOBCandidate) {
  // Failure-oblivious service (totally ordered broadcast): Theorem 9.
  for (int n : {2, 3}) {
    processes::TOBConsensusSpec spec;
    spec.processCount = n;
    spec.serviceResilience = 0;
    spec.policy = services::DummyPolicy::PreferDummy;
    auto sys = buildTOBConsensusSystem(spec);
    AdversaryConfig cfg;
    cfg.claimedFailures = 1;
    auto report = analyzeConsensusCandidate(*sys, cfg);
    EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
        << "n=" << n << ": " << report.summary();
    EXPECT_TRUE(report.hook.has_value());
  }
}

TEST(Adversary, HookClassificationAccompaniesTheVerdict) {
  auto sys = adversarialRelay(2, 0);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  ASSERT_TRUE(report.hook.has_value());
  EXPECT_NE(report.classification.kind,
            HookClassification::Kind::Unclassified);
  EXPECT_NE(report.classification.kind, HookClassification::Kind::Commute);
}

TEST(Adversary, FailedSetSizeMatchesClaim) {
  // J always has exactly f+1 elements in the hook-based construction.
  auto sys = adversarialRelay(3, 1);
  AdversaryConfig cfg;
  cfg.claimedFailures = 2;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  ASSERT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation);
  if (report.hook.has_value() && !report.fairCycle) {
    EXPECT_EQ(static_cast<int>(report.witnessFailures.size()),
              cfg.claimedFailures);
  }
}

TEST(Adversary, RejectsOutOfRangeClaims) {
  auto sys = adversarialRelay(2, 0);
  AdversaryConfig cfg;
  cfg.claimedFailures = 0;  // f+1 must be >= 1
  EXPECT_THROW(analyzeConsensusCandidate(*sys, cfg), std::logic_error);
  cfg.claimedFailures = 2;  // = n: the theorems need f < n-1
  EXPECT_THROW(analyzeConsensusCandidate(*sys, cfg), std::logic_error);
}

TEST(Adversary, SummaryIsHumanReadable) {
  auto sys = adversarialRelay(2, 0);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  const std::string s = report.summary();
  EXPECT_NE(s.find("TERMINATION"), std::string::npos);
  EXPECT_NE(s.find("failed"), std::string::npos);
}

TEST(Adversary, StatesExploredReported) {
  auto sys = adversarialRelay(2, 0);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_GT(report.statesExplored, 10u);
}

}  // namespace
}  // namespace boosting::analysis
