// Differential tests for the flat StateGraph memory layout: the pooled
// CSR edge arena, the interned action table and the compact
// {task_idx, action_idx, to} edges are storage changes only -- every
// observable (successor lists, witness paths, rootOf, node numbering,
// and the intern indices themselves under serial vs parallel
// exploration) must be independent of the layout. The oracle here is the
// System itself: enabled()/applyInPlace() recompute each successor list
// from first principles.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "analysis/bivalence.h"
#include "analysis/dense.h"
#include "analysis/parallel_explorer.h"
#include "analysis/state_graph.h"
#include "processes/relay_consensus.h"
#include "processes/tob_consensus.h"

namespace boosting::analysis {
namespace {

using processes::buildRelayConsensusSystem;
using processes::buildTOBConsensusSystem;
using processes::RelaySystemSpec;
using processes::TOBConsensusSpec;

struct Fixture {
  const char* name;
  std::unique_ptr<ioa::System> (*build)();
};

std::unique_ptr<ioa::System> relay30() {
  RelaySystemSpec spec;
  spec.processCount = 3;
  spec.objectResilience = 0;
  spec.addScratchRegister = false;
  return buildRelayConsensusSystem(spec);
}

std::unique_ptr<ioa::System> relay31() {
  RelaySystemSpec spec;
  spec.processCount = 3;
  spec.objectResilience = 1;
  spec.addScratchRegister = false;
  return buildRelayConsensusSystem(spec);
}

std::unique_ptr<ioa::System> relay31Adversarial() {
  RelaySystemSpec spec;
  spec.processCount = 3;
  spec.objectResilience = 1;
  spec.addScratchRegister = false;
  spec.policy = services::DummyPolicy::PreferDummy;
  return buildRelayConsensusSystem(spec);
}

std::unique_ptr<ioa::System> tob21() {
  TOBConsensusSpec spec;
  spec.processCount = 2;
  spec.serviceResilience = 1;
  spec.policy = services::DummyPolicy::PreferDummy;
  return buildTOBConsensusSystem(spec);
}

const Fixture kFixtures[] = {
    {"relay(3,0)", relay30},
    {"relay(3,1)", relay31},
    {"relay(3,1)+dummy", relay31Adversarial},
    {"tob(2,1)", tob21},
};

// Every cached successor list must be exactly what the System computes
// for that state: one edge per applicable task, in allTasks() order, with
// the enabled action and the interned image of applying it.
TEST(GraphLayout, SuccessorListsMatchSystemOracle) {
  for (const Fixture& fx : kFixtures) {
    auto sys = fx.build();
    StateGraph g(*sys);
    const NodeId root = g.intern(canonicalInitialization(*sys, 1));
    std::vector<NodeId> stack{root};
    DenseNodeSet seen(64);
    seen.insert(root);
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      const EdgeList edges = g.successors(x);
      std::size_t k = 0;
      for (const ioa::TaskId& task : sys->allTasks()) {
        const auto action = sys->enabled(g.state(x), task);
        if (!action) continue;
        ASSERT_LT(k, edges.size()) << fx.name << " node " << x;
        const EdgeView e = edges[k];
        EXPECT_EQ(e.task, task) << fx.name << " node " << x << " edge " << k;
        EXPECT_EQ(e.action, *action)
            << fx.name << " node " << x << " edge " << k;
        ioa::SystemState next = g.state(x);
        sys->applyInPlace(next, *action);
        EXPECT_TRUE(g.state(e.to).equals(next))
            << fx.name << " node " << x << " edge " << k;
        if (seen.insert(e.to)) stack.push_back(e.to);
        ++k;
      }
      ASSERT_EQ(k, edges.size()) << fx.name << " node " << x;
      ASSERT_LT(g.size(), 200000u) << fx.name;
    }
  }
}

// The raw compact edges must round-trip through the intern pools: action
// and task indices in range and decoding to the exact values the view
// exposes, with the pool actually deduplicating repeated actions.
TEST(GraphLayout, CompactEdgesRoundTripThroughInternPools) {
  for (const Fixture& fx : kFixtures) {
    auto sys = fx.build();
    StateGraph g(*sys);
    const NodeId root = g.intern(canonicalInitialization(*sys, 1));
    exploreReachable(g, root, ExplorationPolicy{1, 0});
    std::size_t totalEdges = 0;
    for (NodeId x = 0; x < g.size(); ++x) {
      const auto edges = g.cachedSuccessors(x);
      if (!edges) continue;
      for (std::size_t k = 0; k < edges->size(); ++k) {
        const CompactEdge& ce = edges->data()[k];
        ASSERT_LT(ce.action, g.actionPoolSize()) << fx.name;
        ASSERT_LT(ce.task, sys->allTasks().size()) << fx.name;
        ASSERT_LT(ce.to, g.size()) << fx.name;
        const EdgeView e = (*edges)[k];
        EXPECT_EQ(&g.actionAt(ce.action), &e.action);
        EXPECT_EQ(&g.taskAt(ce.task), &e.task);
        ++totalEdges;
      }
    }
    // Interning must collapse repeats: far fewer distinct actions than
    // edges on every fixture here.
    EXPECT_GT(totalEdges, g.actionPoolSize()) << fx.name;
    EXPECT_GT(g.actionPoolSize(), 0u) << fx.name;
  }
}

// Serial and 4-worker exploration must agree bit-for-bit, down to the
// intern indices inside the compact edges: same node numbering, same
// action pool (same first-occurrence order), same task indices, same
// witness paths.
TEST(GraphLayout, SerialAndParallelLayoutsBitIdentical) {
  for (const Fixture& fx : kFixtures) {
    auto sysS = fx.build();
    StateGraph gs(*sysS);
    const NodeId rootS = gs.intern(canonicalInitialization(*sysS, 1));
    exploreReachable(gs, rootS, ExplorationPolicy{1, 0});

    auto sysP = fx.build();
    StateGraph gp(*sysP);
    const NodeId rootP = gp.intern(canonicalInitialization(*sysP, 1));
    exploreReachable(gp, rootP, ExplorationPolicy{4, 0});

    ASSERT_EQ(gs.size(), gp.size()) << fx.name;
    ASSERT_EQ(gs.actionPoolSize(), gp.actionPoolSize()) << fx.name;
    for (NodeId id = 0; id < gs.size(); ++id) {
      ASSERT_TRUE(gs.state(id).equals(gp.state(id)))
          << fx.name << " node " << id;
      EXPECT_EQ(gs.rootOf(id), gp.rootOf(id)) << fx.name << " node " << id;
      const auto se = gs.cachedSuccessors(id);
      const auto pe = gp.cachedSuccessors(id);
      ASSERT_EQ(se.has_value(), pe.has_value()) << fx.name << " node " << id;
      if (!se) continue;
      ASSERT_EQ(se->size(), pe->size()) << fx.name << " node " << id;
      for (std::size_t k = 0; k < se->size(); ++k) {
        const CompactEdge& a = se->data()[k];
        const CompactEdge& b = pe->data()[k];
        EXPECT_EQ(a.task, b.task) << fx.name << " node " << id;
        EXPECT_EQ(a.action, b.action) << fx.name << " node " << id;
        EXPECT_EQ(a.to, b.to) << fx.name << " node " << id;
      }
      const auto sp = gs.pathTo(id);
      const auto pp = gp.pathTo(id);
      ASSERT_EQ(sp.size(), pp.size()) << fx.name << " node " << id;
      for (std::size_t k = 0; k < sp.size(); ++k) {
        EXPECT_EQ(sp[k].task, pp[k].task);
        EXPECT_EQ(sp[k].action, pp[k].action);
        EXPECT_EQ(sp[k].to, pp[k].to);
      }
    }
    // Both pools decode every index to equal actions.
    for (std::uint32_t a = 0; a < gs.actionPoolSize(); ++a) {
      EXPECT_EQ(gs.actionAt(a), gp.actionAt(a)) << fx.name << " action " << a;
    }
  }
}

// Witness paths replay through the real System to the node's state even
// though parents store only intern indices.
TEST(GraphLayout, PathToReplaysThroughSystem) {
  for (const Fixture& fx : kFixtures) {
    auto sys = fx.build();
    StateGraph g(*sys);
    const NodeId root = g.intern(canonicalInitialization(*sys, 1));
    exploreReachable(g, root, ExplorationPolicy{1, 0});
    // Sample the whole graph on the small fixtures, stride the big ones.
    const NodeId stride = g.size() > 2000 ? 37 : 1;
    for (NodeId id = 0; id < g.size(); id += stride) {
      EXPECT_EQ(g.rootOf(id), root);
      ioa::SystemState s = g.state(root);
      for (const Edge& e : g.pathTo(id)) sys->applyInPlace(s, e.action);
      ASSERT_TRUE(s.equals(g.state(id))) << fx.name << " node " << id;
    }
  }
}

// memoryStats() is live accounting: every component grows (weakly) as the
// graph grows, and totals are plausible for the flat layout.
TEST(GraphLayout, MemoryStatsTrackGrowth) {
  auto sys = relay31();
  StateGraph g(*sys);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  const auto empty = g.memoryStats();
  EXPECT_GT(empty.bytesStates, 0u);
  exploreReachable(g, root, ExplorationPolicy{1, 0});
  const auto full = g.memoryStats();
  EXPECT_GT(full.bytesStates, empty.bytesStates);
  EXPECT_GT(full.bytesEdges, 0u);
  EXPECT_GT(full.bytesIndex, 0u);
  // Edge accounting is chunk-granular (reserved arena slack counts), so
  // bound it by whole chunks rather than per state: this small fixture
  // must fit one 2^15-slot chunk of 12-byte edges plus pool overhead.
  std::size_t edgeCount = 0;
  for (NodeId x = 0; x < g.size(); ++x) {
    if (const auto edges = g.cachedSuccessors(x)) edgeCount += edges->size();
  }
  EXPECT_GE(full.bytesEdges, edgeCount * sizeof(CompactEdge));
  EXPECT_LE(full.bytesEdges, (1u << 15) * sizeof(CompactEdge) + (1u << 20));
  EXPECT_EQ(full.total(),
            full.bytesStates + full.bytesEdges + full.bytesIndex);
}

}  // namespace
}  // namespace boosting::analysis
