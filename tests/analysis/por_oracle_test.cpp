// Brute-force oracle for the POR engine on the n=3 relay fixture: the
// FULL reachable graph (no reduction anywhere) is small enough to compute
// exactly, so every claim the reduced exploration makes can be checked
// against ground truth state by state:
//   * every state the reduced BFS visits is genuinely reachable (interning
//     it into the full graph never creates a node);
//   * the valence the reduced analyzer assigns to a shared state equals
//     the full analyzer's valence of that exact state -- stubborn sets
//     plus the cycle proviso preserve decide reachability per node, not
//     just in aggregate;
//   * the set of valence classes realized by the reduced graph equals the
//     full graph's (the reduction cannot lose e.g. all bivalent states);
//   * hook search agrees: from the same bivalent initialization both
//     engines find a hook, with the same endpoint valences.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "analysis/bivalence.h"
#include "analysis/hook.h"
#include "analysis/por.h"
#include "analysis/state_graph.h"
#include "analysis/valence.h"
#include "processes/relay_consensus.h"

namespace boosting::analysis {
namespace {

std::unique_ptr<ioa::System> relay3() {
  processes::RelaySystemSpec spec;
  spec.processCount = 3;
  spec.objectResilience = 1;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildRelayConsensusSystem(spec);
}

// BFS every initialization to a fixpoint through `expand`, which is
// either the full or the POR-reduced successor relation.
template <typename ExpandFn>
std::vector<NodeId> exploreAll(StateGraph& g, const ioa::System& sys,
                               ExpandFn expand) {
  std::deque<NodeId> frontier;
  std::vector<char> queued;
  auto enqueue = [&](NodeId id) {
    if (id >= queued.size()) queued.resize(id + 1, 0);
    if (queued[id]) return;
    queued[id] = 1;
    frontier.push_back(id);
  };
  for (int ones = 0; ones <= sys.processCount(); ++ones) {
    enqueue(g.intern(canonicalInitialization(sys, ones)));
  }
  std::vector<NodeId> visited;
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    visited.push_back(id);
    for (const EdgeView e : expand(id)) enqueue(e.to);
  }
  return visited;
}

TEST(PorOracle, ReducedRelayGraphMatchesBruteForce) {
  auto sys = relay3();

  // Ground truth: the complete reachable graph and its valences.
  StateGraph full(*sys);
  ValenceAnalyzer fullVa(full);
  const std::vector<NodeId> fullNodes = exploreAll(
      full, *sys, [&](NodeId id) { return full.successors(id); });
  for (int ones = 0; ones <= sys->processCount(); ++ones) {
    fullVa.explore(full.intern(canonicalInitialization(*sys, ones)));
  }

  // Reduced run: same roots, ample-set successor relation.
  const auto por = PorPolicy::forSystem(*sys, PorMode::On);
  ASSERT_FALSE(por->trivial()) << por->disabledReason();
  StateGraph red(*sys, nullptr, por);
  ASSERT_TRUE(red.porActive());
  ValenceAnalyzer redVa(red);
  const std::vector<NodeId> redNodes = exploreAll(
      red, *sys, [&](NodeId id) { return red.exploreSuccessors(id); });
  for (int ones = 0; ones <= sys->processCount(); ++ones) {
    redVa.explore(red.intern(canonicalInitialization(*sys, ones)));
  }

  // The reduction must actually reduce on this fixture.
  EXPECT_LT(red.size(), full.size());
  EXPECT_GT(por->nodesReduced(), 0u);

  // (1) Reduced-reachable is a subset of full-reachable: interning every
  // reduced state into the (already complete) full graph finds it.
  const std::size_t fullSize = full.size();
  std::set<Valence> fullClasses, redClasses;
  for (NodeId id : fullNodes) fullClasses.insert(fullVa.valence(id));
  for (NodeId rid : redNodes) {
    const NodeId fid = full.intern(red.state(rid));
    ASSERT_LT(fid, fullSize)
        << "reduced node " << rid << " is not reachable in the full graph";
    // (2) per-state valence agreement.
    const Valence rv = redVa.valence(rid);
    EXPECT_EQ(rv, fullVa.valence(fid))
        << "valence mismatch at reduced node " << rid << " / full node "
        << fid;
    redClasses.insert(rv);
  }
  EXPECT_EQ(full.size(), fullSize);

  // (3) every valence class survives the reduction.
  EXPECT_EQ(fullClasses, redClasses);

  // (4) hook existence agrees from the shared bivalent initialization.
  BivalenceResult fullBiv = findBivalentInitialization(full, fullVa);
  BivalenceResult redBiv = findBivalentInitialization(red, redVa);
  ASSERT_TRUE(fullBiv.bivalent.has_value());
  ASSERT_TRUE(redBiv.bivalent.has_value());
  EXPECT_EQ(fullBiv.bivalent->onesPrefix, redBiv.bivalent->onesPrefix);
  HookSearchOutcome fullHook = findHook(full, fullVa, fullBiv.bivalent->node);
  HookSearchOutcome redHook = findHook(red, redVa, redBiv.bivalent->node);
  ASSERT_TRUE(fullHook.hook.has_value());
  ASSERT_TRUE(redHook.hook.has_value());
  EXPECT_EQ(fullHook.fairCycle, redHook.fairCycle);
  EXPECT_EQ(fullHook.hook->alpha0Valence, redHook.hook->alpha0Valence);
  EXPECT_EQ(fullHook.hook->alpha1Valence, redHook.hook->alpha1Valence);
  // The reduced engine's hook must be genuine in ITS graph (the walk
  // crosses full-tier edges, so this also exercises the mixed-tier path).
  EXPECT_TRUE(isGenuineHook(red, redVa, *redHook.hook));
}

TEST(PorOracle, ProvisoNeverStrandsAnOpenCycle) {
  // Structural check on the committed reduced graph: every node whose
  // reduced expansion committed a PROPER ample subset has at least one
  // successor that was itself reduced-expanded later (the BFS freshness
  // proviso's post-hoc justification: no ample set can point exclusively
  // back into the closed region).
  auto sys = relay3();
  const auto por = PorPolicy::forSystem(*sys, PorMode::On);
  StateGraph red(*sys, nullptr, por);
  ValenceAnalyzer redVa(red);
  const std::vector<NodeId> redNodes = exploreAll(
      red, *sys, [&](NodeId id) { return red.exploreSuccessors(id); });
  std::size_t properCount = 0;
  for (NodeId id : redNodes) {
    const auto cached = red.cachedReducedSuccessors(id);
    ASSERT_TRUE(cached.has_value()) << "node " << id << " never expanded";
    const auto fullEdges = red.successors(id);
    if (cached->size() == fullEdges.size()) continue;  // alias / improper
    ++properCount;
    bool forward = false;
    for (const EdgeView e : *cached) {
      if (e.to != id) forward = true;
    }
    EXPECT_TRUE(forward)
        << "node " << id << " committed an ample set of self-loops only";
  }
  EXPECT_GT(properCount, 0u);
}

}  // namespace
}  // namespace boosting::analysis
