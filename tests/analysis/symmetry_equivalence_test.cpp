// Differential check for the symmetry quotient: the adversary pipeline
// must reach the SAME verdict, the same initialization valences and a
// genuinely replayable witness whether or not orbit canonicalization is
// active. Soundness of the reduction rests on equivariance plus the
// similarity lemmas (see DESIGN.md "Symmetry reduction"); this suite is
// the executable form of that argument on every n=3 fixture, including
// the candidates where the reduction must REFUSE to apply (asymmetric
// connection patterns, undeclared symmetry).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/adversary.h"
#include "processes/flooding_consensus.h"
#include "processes/relay_consensus.h"
#include "processes/rotating_consensus.h"
#include "processes/tob_consensus.h"

namespace boosting::analysis {
namespace {

std::unique_ptr<ioa::System> relayFixture(int n, int f) {
  processes::RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildRelayConsensusSystem(spec);
}

std::unique_ptr<ioa::System> floodingFixture(int n, int f) {
  processes::FloodingConsensusSpec spec;
  spec.processCount = n;
  spec.channelResilience = f;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildFloodingConsensusSystem(spec);
}

AdversaryReport runWith(const ioa::System& sys, int claim, SymmetryMode mode,
                        bool exemptFailureAware = false, int threads = 1) {
  AdversaryConfig cfg;
  cfg.claimedFailures = claim;
  cfg.exemptFailureAware = exemptFailureAware;
  cfg.symmetry = mode;
  cfg.exploration.threads = threads;
  return analyzeConsensusCandidate(sys, cfg);
}

// Valences are orbit-invariant, so the per-initialization outcomes must
// match exactly (node ids live in different graphs and are not compared).
void expectSameProofShape(const AdversaryReport& off,
                          const AdversaryReport& on) {
  EXPECT_EQ(off.verdict, on.verdict)
      << "off: " << off.summary() << "\non: " << on.summary();
  ASSERT_EQ(off.initializations.size(), on.initializations.size());
  for (std::size_t i = 0; i < off.initializations.size(); ++i) {
    EXPECT_EQ(off.initializations[i].onesPrefix,
              on.initializations[i].onesPrefix);
    EXPECT_EQ(off.initializations[i].valence, on.initializations[i].valence)
        << "initialization " << off.initializations[i].onesPrefix;
  }
  EXPECT_EQ(off.bivalentInit.has_value(), on.bivalentInit.has_value());
  if (off.bivalentInit && on.bivalentInit) {
    EXPECT_EQ(off.bivalentInit->onesPrefix, on.bivalentInit->onesPrefix);
  }
  EXPECT_EQ(off.fairCycle, on.fairCycle);
}

// The quotient witness is lifted back through the canonicalization
// permutations, so it must replay as a real execution of the UNreduced
// system: apply every action from the initial state, reproduce the failure
// set, and never let a correct process decide (the termination violation).
void expectWitnessIsConcrete(const ioa::System& sys,
                             const AdversaryReport& report) {
  ASSERT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation);
  ASSERT_FALSE(report.witness.empty());
  ioa::SystemState s = sys.initialState();
  for (const ioa::Action& a : report.witness.actions()) {
    ASSERT_NO_THROW(sys.applyInPlace(s, a)) << a.str();
  }
  EXPECT_EQ(report.witness.failedEndpoints(), report.witnessFailures);
  for (const ioa::Action& a : report.witness.actions()) {
    if (a.kind == ioa::ActionKind::EnvDecide) {
      EXPECT_TRUE(report.witnessFailures.count(a.endpoint))
          << "correct process decided in the lifted witness: " << a.str();
    }
  }
}

TEST(SymmetryEquivalence, RelayN3FZero) {
  auto sys = relayFixture(3, 0);
  const auto off = runWith(*sys, 1, SymmetryMode::Off);
  const auto on = runWith(*sys, 1, SymmetryMode::On);
  expectSameProofShape(off, on);
  EXPECT_FALSE(off.symmetryReduced);
  EXPECT_TRUE(on.symmetryReduced) << on.symmetryNote;
  EXPECT_LT(on.statesExplored, off.statesExplored);
  EXPECT_GT(on.symmetryOrbitsCollapsed, 0u);
  EXPECT_GE(on.symmetryStatesRaw, on.statesExplored);
}

TEST(SymmetryEquivalence, RelayN3FOne) {
  // The genuinely-boosting claim (f = 1 -> 2): the heart of Theorem 2.
  auto sys = relayFixture(3, 1);
  const auto off = runWith(*sys, 2, SymmetryMode::Off);
  const auto on = runWith(*sys, 2, SymmetryMode::On);
  expectSameProofShape(off, on);
  EXPECT_TRUE(on.symmetryReduced) << on.symmetryNote;
  EXPECT_LT(on.statesExplored, off.statesExplored);
  EXPECT_EQ(off.witnessFailures.size(), on.witnessFailures.size());
}

TEST(SymmetryEquivalence, FloodingN3IdSensitive) {
  // Flood states embed sender identities, so this exercises the
  // full-group relabeledState strategy rather than the id-free sort.
  auto sys = floodingFixture(3, 0);
  const auto off = runWith(*sys, 1, SymmetryMode::Off);
  const auto on = runWith(*sys, 1, SymmetryMode::On);
  expectSameProofShape(off, on);
  EXPECT_TRUE(on.symmetryReduced) << on.symmetryNote;
  EXPECT_LT(on.statesExplored, off.statesExplored);
}

TEST(SymmetryEquivalence, TOBN3DeclinesWithoutDeclaredSymmetry) {
  processes::TOBConsensusSpec spec;
  spec.processCount = 3;
  spec.serviceResilience = 0;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildTOBConsensusSystem(spec);
  const auto off = runWith(*sys, 1, SymmetryMode::Off);
  const auto on = runWith(*sys, 1, SymmetryMode::On);
  // No declared symmetry: On must fall back to the identity group, say
  // why, and reproduce the legacy run bit-for-bit.
  EXPECT_FALSE(on.symmetryReduced);
  EXPECT_FALSE(on.symmetryNote.empty());
  expectSameProofShape(off, on);
  EXPECT_EQ(off.statesExplored, on.statesExplored);
}

TEST(SymmetryEquivalence, BridgeN3AsymmetricTopologyDeclines) {
  processes::BridgeSystemSpec spec;
  spec.processCount = 3;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildBridgeConsensusSystem(spec);
  const auto off = runWith(*sys, 1, SymmetryMode::Off);
  const auto on = runWith(*sys, 1, SymmetryMode::On);
  EXPECT_FALSE(on.symmetryReduced);
  EXPECT_FALSE(on.symmetryNote.empty());
  expectSameProofShape(off, on);
  EXPECT_EQ(off.statesExplored, on.statesExplored);
}

TEST(SymmetryEquivalence, SingleFDN3Theorem10Mode) {
  processes::SingleFDConsensusSpec spec;
  spec.processCount = 3;
  spec.fdResilience = 0;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildSingleFDRotatingConsensusSystem(spec);
  const auto off =
      runWith(*sys, 1, SymmetryMode::Off, /*exemptFailureAware=*/true);
  const auto on =
      runWith(*sys, 1, SymmetryMode::On, /*exemptFailureAware=*/true);
  expectSameProofShape(off, on);
}

TEST(SymmetryEquivalence, RelayWitnessLiftsToConcreteExecution) {
  auto sys = relayFixture(3, 1);
  const auto on = runWith(*sys, 2, SymmetryMode::On);
  ASSERT_TRUE(on.symmetryReduced) << on.symmetryNote;
  expectWitnessIsConcrete(*sys, on);
}

TEST(SymmetryEquivalence, FloodingWitnessLiftsToConcreteExecution) {
  auto sys = floodingFixture(3, 0);
  const auto on = runWith(*sys, 1, SymmetryMode::On);
  ASSERT_TRUE(on.symmetryReduced) << on.symmetryNote;
  expectWitnessIsConcrete(*sys, on);
}

TEST(SymmetryEquivalence, QuotientIsDeterministicAcrossThreadCounts) {
  // The PR-1 guarantee survives the quotient: serial and parallel
  // exploration of the REDUCED graph agree on every proof artifact and
  // on the witness byte-for-byte.
  auto sys = relayFixture(3, 1);
  const auto serial = runWith(*sys, 2, SymmetryMode::On, false, /*threads=*/1);
  const auto parallel =
      runWith(*sys, 2, SymmetryMode::On, false, /*threads=*/3);
  expectSameProofShape(serial, parallel);
  EXPECT_EQ(serial.statesExplored, parallel.statesExplored);
  ASSERT_EQ(serial.witness.size(), parallel.witness.size());
  for (std::size_t i = 0; i < serial.witness.size(); ++i) {
    EXPECT_EQ(serial.witness.actions()[i].str(),
              parallel.witness.actions()[i].str())
        << "witness diverges at action " << i;
  }
}

TEST(SymmetryEquivalence, AutoEnablesForDeclaredSymmetryOnly) {
  {
    auto sys = relayFixture(3, 0);
    const auto r = runWith(*sys, 1, SymmetryMode::Auto);
    EXPECT_TRUE(r.symmetryReduced);
  }
  {
    processes::TOBConsensusSpec spec;
    spec.processCount = 3;
    spec.serviceResilience = 0;
    spec.policy = services::DummyPolicy::PreferDummy;
    auto sys = processes::buildTOBConsensusSystem(spec);
    const auto r = runWith(*sys, 1, SymmetryMode::Auto);
    EXPECT_FALSE(r.symmetryReduced);
  }
}

TEST(SymmetryEquivalence, OffIsTheLibraryDefault) {
  // Library callers who never touch cfg.symmetry must keep the legacy
  // engine bit-for-bit (CLI opts into Auto explicitly).
  AdversaryConfig cfg;
  EXPECT_EQ(cfg.symmetry, SymmetryMode::Off);
}

}  // namespace
}  // namespace boosting::analysis
