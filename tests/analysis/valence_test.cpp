// Valence (Section 3.2): exhaustive decision reachability. Unanimous
// initializations are univalent (validity), mixed ones bivalent for the
// relay candidate, uninitialized systems Null-valent, and valence evolves
// correctly along committing steps.
#include "analysis/valence.h"

#include <gtest/gtest.h>

#include <set>

#include "analysis/bivalence.h"
#include "processes/relay_consensus.h"
#include "sim/runner.h"

namespace boosting::analysis {
namespace {

using processes::buildRelayConsensusSystem;
using processes::RelaySystemSpec;

std::unique_ptr<ioa::System> relay(int n, int f) {
  RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = false;
  return buildRelayConsensusSystem(spec);
}

TEST(Valence, UnanimousZeroIsZeroValent) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 0));
  va.explore(root);
  EXPECT_EQ(va.valence(root), Valence::Zero);
  EXPECT_TRUE(va.canDecide(root, 0));
  EXPECT_FALSE(va.canDecide(root, 1));
}

TEST(Valence, UnanimousOneIsOneValent) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 2));
  va.explore(root);
  EXPECT_EQ(va.valence(root), Valence::One);
}

TEST(Valence, MixedInputsAreBivalentForRelay) {
  // Whichever proposal the object performs first wins, so both decisions
  // are reachable from a mixed initialization.
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  va.explore(root);
  EXPECT_EQ(va.valence(root), Valence::Bivalent);
  EXPECT_TRUE(va.canDecide(root, 0));
  EXPECT_TRUE(va.canDecide(root, 1));
}

TEST(Valence, UninitializedSystemIsNullValent) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(sys->initialState());
  va.explore(root);
  EXPECT_EQ(va.valence(root), Valence::Null);
  EXPECT_FALSE(va.canDecide(root, 0));
  EXPECT_FALSE(va.canDecide(root, 1));
}

TEST(Valence, CommittingStepMakesUnivalent) {
  // After the object performs P1's init(1) first, only decide(1) remains
  // reachable.
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));  // P0 gets 1
  va.explore(root);
  // P0 invokes init(1); object performs it.
  NodeId afterInvoke = g.successorVia(root, ioa::TaskId::process(0))->to;
  auto performEdge =
      g.successorVia(afterInvoke, ioa::TaskId::servicePerform(100, 0));
  ASSERT_TRUE(performEdge);
  EXPECT_EQ(va.valence(performEdge->to), Valence::One);
}

TEST(Valence, MonotoneAlongEdges) {
  // A successor's decision set is a subset of its predecessor's: no new
  // decisions appear by taking a step.
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  va.explore(root);
  std::vector<NodeId> stack{root};
  std::set<NodeId> seen{root};
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    const bool x0 = va.canDecide(x, 0), x1 = va.canDecide(x, 1);
    for (const EdgeView e : g.successors(x)) {
      EXPECT_TRUE(x0 || !va.canDecide(e.to, 0));
      EXPECT_TRUE(x1 || !va.canDecide(e.to, 1));
      if (seen.insert(e.to).second) stack.push_back(e.to);
    }
  }
}

TEST(Valence, BivalentNodeHasAllSuccessorsExplored) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  va.explore(root);
  for (const EdgeView e : g.successors(root)) {
    EXPECT_TRUE(va.explored(e.to));
  }
}

TEST(Valence, ExploreIsIdempotent) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  va.explore(root);
  const std::size_t count = va.exploredCount();
  va.explore(root);
  EXPECT_EQ(va.exploredCount(), count);
  EXPECT_EQ(va.valence(root), Valence::Bivalent);
}

TEST(Valence, OverlappingRegionsConsistent) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId mixed = g.intern(canonicalInitialization(*sys, 1));
  va.explore(mixed);
  // A successor region overlaps the already-explored one; valences must
  // stay consistent when explored from the new root.
  NodeId after = g.successorVia(mixed, ioa::TaskId::process(0))->to;
  va.explore(after);
  EXPECT_EQ(va.valence(mixed), Valence::Bivalent);
  EXPECT_TRUE(va.explored(after));
}

TEST(Valence, UnexploredNodeThrows) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  EXPECT_THROW(va.valence(root), std::logic_error);
}

TEST(Valence, CertificateAgreesWithRandomSimulation) {
  // Cross-validation of the exhaustive certificate against independent
  // random fair runs: from a 0-valent configuration every completed run
  // decides 0; from a bivalent one both decisions occur across seeds.
  auto sys = relay(2, 1);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId mixed = g.intern(canonicalInitialization(*sys, 1));
  va.explore(mixed);
  ASSERT_EQ(va.valence(mixed), Valence::Bivalent);
  // Commit to 1: P0 (input 1) invokes and the object performs it.
  NodeId afterInvoke = g.successorVia(mixed, ioa::TaskId::process(0))->to;
  NodeId committed =
      g.successorVia(afterInvoke, ioa::TaskId::servicePerform(100, 0))->to;
  ASSERT_EQ(va.valence(committed), Valence::One);

  std::set<util::Value> decisionsFromMixed, decisionsFromCommitted;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    for (auto [start, sink] :
         {std::pair{mixed, &decisionsFromMixed},
          std::pair{committed, &decisionsFromCommitted}}) {
      sim::RunConfig cfg;
      cfg.startState = g.state(start);
      cfg.scheduler = sim::RunConfig::Sched::Random;
      cfg.seed = seed;
      // The start state already holds the inputs; count decisions from the
      // run's decide actions.
      cfg.stopWhenAllDecided = false;
      cfg.maxSteps = 500;
      auto r = sim::run(*sys, cfg);
      for (const auto& [i, v] : r.exec.decisions()) {
        (void)i;
        sink->insert(v);
      }
    }
  }
  EXPECT_EQ(decisionsFromCommitted,
            (std::set<util::Value>{util::Value(1)}));
  EXPECT_EQ(decisionsFromMixed,
            (std::set<util::Value>{util::Value(0), util::Value(1)}));
}

TEST(Valence, ThreeProcessRelayMixedBivalent) {
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 2));
  va.explore(root);
  EXPECT_EQ(va.valence(root), Valence::Bivalent);
}

}  // namespace
}  // namespace boosting::analysis
