// Similarity (Section 3.5) and the Lemma 8 case analysis on concrete
// hooks: the hook endpoints are always connected by a similarity relation
// (or the tasks commute, which exhaustive valence rules out).
#include "analysis/similarity.h"

#include <gtest/gtest.h>

#include "analysis/bivalence.h"
#include "processes/relay_consensus.h"
#include "processes/tob_consensus.h"

namespace boosting::analysis {
namespace {

using processes::buildRelayConsensusSystem;
using processes::RelaySystemSpec;
using util::sym;
using util::Value;

std::unique_ptr<ioa::System> relay(int n, int f) {
  RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = false;
  return buildRelayConsensusSystem(spec);
}

TEST(Similarity, IdenticalStatesAreSimilarEverywhere) {
  auto sys = relay(2, 0);
  ioa::SystemState s = canonicalInitialization(*sys, 1);
  for (int j = 0; j < 2; ++j) EXPECT_TRUE(jSimilar(*sys, s, s, j));
  EXPECT_TRUE(kSimilar(*sys, s, s, 100));
}

TEST(Similarity, JSimilarToleratesOnlyThatProcess) {
  auto sys = relay(2, 0);
  ioa::SystemState a = canonicalInitialization(*sys, 1);
  ioa::SystemState b = canonicalInitialization(*sys, 1);
  // Step P0 only in b: states differ in P0 and in the object's buffer(0).
  sys->applyInPlace(b, ioa::Action::invoke(0, 100, sym("init", 1)));
  EXPECT_TRUE(jSimilar(*sys, a, b, 0));
  EXPECT_FALSE(jSimilar(*sys, a, b, 1));
}

TEST(Similarity, JSimilarRejectsValDifferences) {
  auto sys = relay(2, 0);
  ioa::SystemState a = canonicalInitialization(*sys, 1);
  ioa::SystemState b = canonicalInitialization(*sys, 1);
  // Drive b until the object's val changes (perform of P0's init).
  sys->applyInPlace(b, ioa::Action::invoke(0, 100, sym("init", 1)));
  sys->applyInPlace(b, ioa::Action::perform(0, 100));
  // The object's val differs, which no j-similarity may ignore.
  EXPECT_FALSE(jSimilar(*sys, a, b, 0));
  EXPECT_FALSE(jSimilar(*sys, a, b, 1));
}

TEST(Similarity, KSimilarToleratesOnlyThatService) {
  auto sys = relay(2, 0);
  ioa::SystemState a = canonicalInitialization(*sys, 1);
  ioa::SystemState b = canonicalInitialization(*sys, 1);
  sys->applyInPlace(b, ioa::Action::invoke(0, 100, sym("init", 1)));
  // b differs from a in P0's state AND the object: not k-similar for the
  // object (process states must match exactly).
  EXPECT_FALSE(kSimilar(*sys, a, b, 100));
  // Mutate ONLY the object in a copy: k-similar for it.
  ioa::SystemState c = canonicalInitialization(*sys, 1);
  auto& svc = services::CanonicalGeneralService::stateOf(
      c.part(sys->slotForService(100)));
  svc.val = sym("chosen", 1);
  EXPECT_TRUE(kSimilar(*sys, canonicalInitialization(*sys, 1), c, 100));
  EXPECT_FALSE(jSimilar(*sys, canonicalInitialization(*sys, 1), c, 0));
}

TEST(Similarity, KSimilarWithRegisterPresent) {
  RelaySystemSpec spec;
  spec.processCount = 2;
  spec.objectResilience = 0;
  spec.addScratchRegister = true;
  auto sys = buildRelayConsensusSystem(spec);
  ioa::SystemState a = canonicalInitialization(*sys, 1);
  ioa::SystemState b = canonicalInitialization(*sys, 1);
  auto& reg = services::CanonicalGeneralService::stateOf(
      b.part(sys->slotForService(200)));
  reg.val = Value(7);
  EXPECT_TRUE(kSimilar(*sys, a, b, 200));
  EXPECT_FALSE(kSimilar(*sys, a, b, 100));
}

struct ClassifiedHook {
  std::unique_ptr<ioa::System> sys;
  std::unique_ptr<StateGraph> g;
  std::unique_ptr<ValenceAnalyzer> va;
  Hook hook;
  HookClassification cls;

  explicit ClassifiedHook(std::unique_ptr<ioa::System> system)
      : sys(std::move(system)) {
    g = std::make_unique<StateGraph>(*sys);
    va = std::make_unique<ValenceAnalyzer>(*g);
    auto biv = findBivalentInitialization(*g, *va);
    auto outcome = findHook(*g, *va, biv.bivalent->node);
    hook = *outcome.hook;
    cls = classifyHook(*g, hook);
  }
};

TEST(HookClassification, RelayHookIsClassified) {
  ClassifiedHook fx(relay(2, 0));
  EXPECT_NE(fx.cls.kind, HookClassification::Kind::Unclassified)
      << fx.cls.narrative;
  // Commuting is impossible when valences are certified opposite.
  EXPECT_NE(fx.cls.kind, HookClassification::Kind::Commute);
}

TEST(HookClassification, RelayHookEndpointsDifferOnlyAtTheObject) {
  // For the relay, the hook's committing task is the object's perform;
  // Lemma 8 Claim 4 case 1/4 predicts k-similarity at the object (or
  // j-similarity at the invoking process).
  ClassifiedHook fx(relay(2, 0));
  if (fx.cls.kind == HookClassification::Kind::ServiceSimilar) {
    EXPECT_EQ(fx.cls.index, 100);
  } else {
    EXPECT_EQ(fx.cls.kind, HookClassification::Kind::ProcessSimilar);
    EXPECT_GE(fx.cls.index, 0);
    EXPECT_LT(fx.cls.index, 2);
  }
}

TEST(HookClassification, ThreeProcessHooksClassified) {
  for (auto [n, f] : {std::pair{3, 0}, std::pair{3, 1}}) {
    ClassifiedHook fx(relay(n, f));
    EXPECT_NE(fx.cls.kind, HookClassification::Kind::Unclassified)
        << "n=" << n << " f=" << f << ": " << fx.cls.narrative;
  }
}

TEST(HookClassification, TOBHookClassified) {
  processes::TOBConsensusSpec spec;
  spec.processCount = 2;
  spec.serviceResilience = 0;
  ClassifiedHook fx(processes::buildTOBConsensusSystem(spec));
  EXPECT_NE(fx.cls.kind, HookClassification::Kind::Unclassified)
      << fx.cls.narrative;
}

TEST(HookClassification, BridgeHookClassified) {
  processes::BridgeSystemSpec spec;
  ClassifiedHook fx(processes::buildBridgeConsensusSystem(spec));
  EXPECT_NE(fx.cls.kind, HookClassification::Kind::Unclassified)
      << fx.cls.narrative;
}

TEST(HookClassification, NarrativeMentionsTheLemma) {
  ClassifiedHook fx(relay(2, 0));
  EXPECT_NE(fx.cls.narrative.find("Lemma"), std::string::npos);
}

}  // namespace
}  // namespace boosting::analysis
