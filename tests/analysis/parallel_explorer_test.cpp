// Differential serial-vs-parallel exploration harness.
//
// The parallel engine's whole contract (analysis/parallel_explorer.h) is
// that thread count is UNOBSERVABLE: for any fixture and any worker count,
// the StateGraph it produces -- node ids, states, parents, successor
// lists -- and every downstream proof artifact (valences, Lemma 4
// outcomes, hooks, adversary verdicts) must be bit-for-bit identical to
// the serial explorer's. These tests check that equivalence over the same
// system fixtures the valence/hook/adversary suites use, at 2, 4 and 8
// workers, plus a repeated-run stress case to shake out scheduling
// nondeterminism.
#include "analysis/parallel_explorer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/adversary.h"
#include "analysis/bivalence.h"
#include "analysis/hook.h"
#include "analysis/valence.h"
#include "processes/relay_consensus.h"
#include "processes/tob_consensus.h"

namespace boosting::analysis {
namespace {

using processes::buildRelayConsensusSystem;
using processes::buildTOBConsensusSystem;
using processes::RelaySystemSpec;
using processes::TOBConsensusSpec;

constexpr unsigned kThreadCounts[] = {2, 4, 8};

std::unique_ptr<ioa::System> relay(int n, int f,
                                   bool adversarial = false) {
  RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = false;
  if (adversarial) spec.policy = services::DummyPolicy::PreferDummy;
  return buildRelayConsensusSystem(spec);
}

std::unique_ptr<ioa::System> tob(int n, int f) {
  TOBConsensusSpec spec;
  spec.processCount = n;
  spec.serviceResilience = f;
  spec.policy = services::DummyPolicy::PreferDummy;
  return buildTOBConsensusSystem(spec);
}

// Bit-for-bit graph equality: same node count, the same state behind every
// node id, the same first-discovery parent chains (via pathTo), and the
// same cached successor lists.
void expectSameGraph(StateGraph& serial, StateGraph& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (NodeId id = 0; id < serial.size(); ++id) {
    ASSERT_TRUE(serial.state(id).equals(parallel.state(id)))
        << "state mismatch at node " << id;
    const auto se = serial.cachedSuccessors(id);
    const auto pe = parallel.cachedSuccessors(id);
    ASSERT_EQ(se.has_value(), pe.has_value()) << "cache mismatch at " << id;
    if (!se) continue;
    ASSERT_EQ(se->size(), pe->size()) << "fan-out mismatch at " << id;
    for (std::size_t k = 0; k < se->size(); ++k) {
      EXPECT_EQ((*se)[k].task, (*pe)[k].task) << "edge task at " << id;
      EXPECT_EQ((*se)[k].to, (*pe)[k].to) << "edge target at " << id;
    }
    auto sp = serial.pathTo(id);
    auto pp = parallel.pathTo(id);
    ASSERT_EQ(sp.size(), pp.size()) << "witness path length at " << id;
    for (std::size_t k = 0; k < sp.size(); ++k) {
      EXPECT_EQ(sp[k].task, pp[k].task);
      EXPECT_EQ(sp[k].to, pp[k].to);
    }
  }
}

TEST(ParallelExplorer, ReachableRegionMatchesSerial) {
  for (auto [n, f] : {std::pair{2, 0}, std::pair{3, 0}, std::pair{3, 1}}) {
    auto sysSerial = relay(n, f);
    StateGraph gs(*sysSerial);
    NodeId rootS = gs.intern(canonicalInitialization(*sysSerial, 1));
    auto statsS = exploreReachable(gs, rootS, ExplorationPolicy{1, 0});
    EXPECT_EQ(statsS.statesDiscovered, gs.size());
    for (unsigned t : kThreadCounts) {
      auto sysPar = relay(n, f);
      StateGraph gp(*sysPar);
      NodeId rootP = gp.intern(canonicalInitialization(*sysPar, 1));
      ASSERT_EQ(rootS, rootP);
      auto statsP = exploreReachable(gp, rootP, ExplorationPolicy{t, 0});
      EXPECT_EQ(statsP.statesDiscovered, statsS.statesDiscovered)
          << "n=" << n << " f=" << f << " threads=" << t;
      EXPECT_FALSE(statsP.truncated);
      expectSameGraph(gs, gp);
    }
  }
}

TEST(ParallelExplorer, ValenceVerdictsMatchSerialPerInitialization) {
  // The full Lemma 4 scan (multi-root shared expansion) must classify every
  // canonical initialization exactly as the serial scan does.
  for (auto [n, f] : {std::pair{2, 0}, std::pair{3, 1}}) {
    auto sysSerial = relay(n, f);
    StateGraph gs(*sysSerial);
    ValenceAnalyzer vas(gs);
    auto serial = findBivalentInitialization(gs, vas, ExplorationPolicy{1});
    for (unsigned t : kThreadCounts) {
      auto sysPar = relay(n, f);
      StateGraph gp(*sysPar);
      ValenceAnalyzer vap(gp);
      vap.setPolicy(ExplorationPolicy{t});
      auto par = findBivalentInitialization(gp, vap, ExplorationPolicy{t});
      ASSERT_EQ(par.initializations.size(), serial.initializations.size());
      for (std::size_t j = 0; j < serial.initializations.size(); ++j) {
        EXPECT_EQ(par.initializations[j].node, serial.initializations[j].node);
        EXPECT_EQ(par.initializations[j].valence,
                  serial.initializations[j].valence)
            << "alpha_" << j << " threads=" << t;
      }
      ASSERT_EQ(par.bivalent.has_value(), serial.bivalent.has_value());
      if (serial.bivalent) {
        EXPECT_EQ(par.bivalent->node, serial.bivalent->node);
        EXPECT_EQ(par.bivalent->onesPrefix, serial.bivalent->onesPrefix);
      }
      expectSameGraph(gs, gp);
      // Per-node valences agree over the serially numbered graph.
      for (NodeId id = 0; id < gs.size(); ++id) {
        ASSERT_EQ(vas.explored(id), vap.explored(id)) << "node " << id;
        if (vas.explored(id)) {
          EXPECT_EQ(vas.valence(id), vap.valence(id)) << "node " << id;
        }
      }
    }
  }
}

TEST(ParallelExplorer, HookSearchMatchesSerial) {
  auto run = [](unsigned threads) {
    auto sys = relay(3, 0);
    auto g = std::make_unique<StateGraph>(*sys);
    auto va = std::make_unique<ValenceAnalyzer>(*g);
    va->setPolicy(ExplorationPolicy{threads});
    auto biv =
        findBivalentInitialization(*g, *va, ExplorationPolicy{threads});
    EXPECT_TRUE(biv.bivalent.has_value());
    return std::tuple{std::move(sys), std::move(g), std::move(va),
                      findHook(*g, *va, biv.bivalent->node, 1u << 20,
                               ExplorationPolicy{threads})};
  };
  auto [sysS, gS, vaS, serial] = run(1);
  ASSERT_TRUE(serial.hook.has_value());
  for (unsigned t : kThreadCounts) {
    auto [sysP, gP, vaP, par] = run(t);
    ASSERT_TRUE(par.hook.has_value()) << "threads=" << t;
    EXPECT_EQ(par.hook->alpha, serial.hook->alpha);
    EXPECT_EQ(par.hook->e, serial.hook->e);
    EXPECT_EQ(par.hook->ePrime, serial.hook->ePrime);
    EXPECT_EQ(par.hook->alpha0, serial.hook->alpha0);
    EXPECT_EQ(par.hook->alphaPrime, serial.hook->alphaPrime);
    EXPECT_EQ(par.hook->alpha1, serial.hook->alpha1);
    EXPECT_EQ(par.hook->alpha0Valence, serial.hook->alpha0Valence);
    EXPECT_EQ(par.hook->alpha1Valence, serial.hook->alpha1Valence);
    EXPECT_EQ(par.fairCycle, serial.fairCycle);
    EXPECT_EQ(par.iterations, serial.iterations);
    expectSameGraph(*gS, *gP);
  }
}

TEST(ParallelExplorer, AdversaryVerdictMatchesSerial) {
  // End to end: the whole Theorem-2 pipeline is thread-count invariant --
  // same verdict, same proof artifacts, same witness execution.
  struct Fixture {
    const char* name;
    std::unique_ptr<ioa::System> (*build)();
  };
  const Fixture fixtures[] = {
      {"relay(2,0)", [] { return relay(2, 0, true); }},
      {"relay(3,1)", [] { return relay(3, 1, true); }},
      {"tob(2,0)", [] { return tob(2, 0); }},
  };
  for (const auto& fx : fixtures) {
    auto sysS = fx.build();
    AdversaryConfig cfgS;
    cfgS.claimedFailures =
        std::string(fx.name) == "relay(3,1)" ? 2 : 1;
    auto serial = analyzeConsensusCandidate(*sysS, cfgS);
    for (unsigned t : kThreadCounts) {
      auto sysP = fx.build();
      AdversaryConfig cfgP = cfgS;
      cfgP.exploration.threads = t;
      auto par = analyzeConsensusCandidate(*sysP, cfgP);
      EXPECT_EQ(par.verdict, serial.verdict)
          << fx.name << " threads=" << t;
      EXPECT_EQ(par.witnessFailures, serial.witnessFailures) << fx.name;
      EXPECT_EQ(par.statesExplored, serial.statesExplored) << fx.name;
      ASSERT_EQ(par.witness.size(), serial.witness.size()) << fx.name;
      ASSERT_EQ(par.hook.has_value(), serial.hook.has_value());
      if (serial.hook) {
        EXPECT_EQ(par.hook->alpha, serial.hook->alpha);
        EXPECT_EQ(par.hook->e, serial.hook->e);
        EXPECT_EQ(par.hook->ePrime, serial.hook->ePrime);
      }
      ASSERT_EQ(par.initializations.size(), serial.initializations.size());
      for (std::size_t j = 0; j < serial.initializations.size(); ++j) {
        EXPECT_EQ(par.initializations[j].valence,
                  serial.initializations[j].valence);
      }
    }
  }
}

TEST(ParallelExplorer, RepeatedRunsAreDeterministic) {
  // x20 stress: thread scheduling varies run to run, the installed graph
  // must not.
  auto sysSerial = relay(3, 0);
  StateGraph gs(*sysSerial);
  NodeId rootS = gs.intern(canonicalInitialization(*sysSerial, 1));
  exploreReachable(gs, rootS, ExplorationPolicy{1});
  for (int run = 0; run < 20; ++run) {
    auto sysPar = relay(3, 0);
    StateGraph gp(*sysPar);
    NodeId rootP = gp.intern(canonicalInitialization(*sysPar, 1));
    auto stats = exploreReachable(gp, rootP, ExplorationPolicy{4});
    EXPECT_EQ(stats.statesDiscovered, gs.size()) << "run " << run;
    expectSameGraph(gs, gp);
  }
}

TEST(ParallelExplorer, MaxStatesTruncates) {
  auto sys = relay(3, 0);
  StateGraph g(*sys);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  auto stats = exploreReachable(g, root, ExplorationPolicy{4, 50});
  EXPECT_TRUE(stats.truncated);
  EXPECT_GE(stats.statesDiscovered, 50u);
  // The installed graph holds exactly the discovered states; truncated
  // frontier leaves have no cached successors.
  EXPECT_EQ(g.size(), stats.statesDiscovered);
  bool someLeaf = false;
  for (NodeId id = 0; id < g.size(); ++id) {
    if (!g.cachedSuccessors(id)) someLeaf = true;
  }
  EXPECT_TRUE(someLeaf);
}

TEST(ParallelExplorer, SerialMaxStatesAlsoTruncates) {
  auto sys = relay(3, 0);
  StateGraph g(*sys);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  auto stats = exploreReachable(g, root, ExplorationPolicy{1, 50});
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(g.size(), stats.statesDiscovered);
}

TEST(ParallelExplorer, ZeroThreadsUsesHardwareConcurrency) {
  auto sysSerial = relay(2, 0);
  StateGraph gs(*sysSerial);
  NodeId rootS = gs.intern(canonicalInitialization(*sysSerial, 1));
  exploreReachable(gs, rootS, ExplorationPolicy{1});

  auto sysPar = relay(2, 0);
  StateGraph gp(*sysPar);
  NodeId rootP = gp.intern(canonicalInitialization(*sysPar, 1));
  auto stats = exploreReachable(gp, rootP, ExplorationPolicy{0});
  EXPECT_GE(stats.threadsUsed, 1u);
  expectSameGraph(gs, gp);
}

}  // namespace
}  // namespace boosting::analysis
