// Observability end-to-end: the registry's counters must agree with the
// engines' ground truth (serial == parallel discovery counts, memo
// hits + misses == lookups, per-worker expansions summing to the states
// actually expanded), timers must record the phases that ran, and the
// metrics JSON export must be well formed.
#include "analysis/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/adversary.h"
#include "analysis/bivalence.h"
#include "analysis/parallel_explorer.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "processes/relay_consensus.h"
#include "processes/tob_consensus.h"
#include "sim/runner.h"

namespace boosting::analysis {
namespace {

std::unique_ptr<ioa::System> relay(int n, int f) {
  processes::RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = false;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildRelayConsensusSystem(spec);
}

std::unique_ptr<ioa::System> tob(int n, int f) {
  processes::TOBConsensusSpec spec;
  spec.processCount = n;
  spec.serviceResilience = f;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildTOBConsensusSystem(spec);
}

// Run the full adversary with metrics attached and return the registry's
// graph-level discovery counters.
struct PipelineCounters {
  std::uint64_t states = 0;
  std::uint64_t edges = 0;
};

PipelineCounters runPipeline(const ioa::System& sys, int claim,
                             unsigned threads, obs::Registry& reg) {
  AdversaryConfig cfg;
  cfg.claimedFailures = claim;
  cfg.exploration.threads = threads;
  cfg.exploration.metrics = &reg;
  (void)analyzeConsensusCandidate(sys, cfg);
  return PipelineCounters{reg.value("graph.states_discovered"),
                          reg.value("graph.edges_discovered")};
}

TEST(ObsMetrics, SerialAndParallelDiscoveryCountersAgree) {
  struct Fixture {
    std::unique_ptr<ioa::System> sys;
    int claim;
  };
  Fixture fixtures[] = {{relay(3, 1), 2}, {tob(2, 0), 1}};
  for (const auto& fx : fixtures) {
    obs::Registry serialReg, parallelReg;
    const PipelineCounters s = runPipeline(*fx.sys, fx.claim, 1, serialReg);
    const PipelineCounters p = runPipeline(*fx.sys, fx.claim, 2, parallelReg);
    EXPECT_GT(s.states, 0u);
    EXPECT_GT(s.edges, 0u);
    EXPECT_EQ(s.states, p.states);
    EXPECT_EQ(s.edges, p.edges);
  }
}

TEST(ObsMetrics, CacheHitsPlusMissesEqualLookups) {
  auto sys = relay(3, 1);
  for (unsigned threads : {1u, 2u}) {
    obs::Registry reg;
    runPipeline(*sys, 2, threads, reg);
    for (const char* prefix : {"cache.", "explorer.cache."}) {
      const std::string p(prefix);
      EXPECT_EQ(reg.value(p + "enabled_hits") + reg.value(p + "enabled_misses"),
                reg.value(p + "enabled_lookups"))
          << p << " enabled memo, threads=" << threads;
      EXPECT_EQ(reg.value(p + "apply_hits") + reg.value(p + "apply_misses"),
                reg.value(p + "apply_lookups"))
          << p << " apply memo, threads=" << threads;
    }
    // Something must actually have been counted on the path that ran.
    const std::string active = threads == 1 ? "cache." : "explorer.cache.";
    EXPECT_GT(reg.value(active + "enabled_lookups"), 0u)
        << "threads=" << threads;
  }
}

TEST(ObsMetrics, PhaseTimersRecorded) {
  auto sys = relay(3, 1);
  obs::Registry reg;
  runPipeline(*sys, 2, 1, reg);
  for (const char* phase :
       {"phase.adversary", "phase.bivalence", "phase.valence",
        "phase.safety_scan", "phase.hook"}) {
    EXPECT_GT(reg.timer(phase).count, 0u) << phase << " never reported";
  }
  // The hook pipeline ends in a gamma run on this fixture.
  EXPECT_GT(reg.value("runner.runs"), 0u);
}

TEST(ObsMetrics, PerWorkerExpansionsSumToStates) {
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  ExplorationPolicy policy;
  policy.threads = 2;
  const ExploreStats stats = exploreReachable(g, root, policy);
  ASSERT_FALSE(stats.truncated);
  ASSERT_EQ(stats.perWorker.size(), 2u);
  std::uint64_t expanded = 0;
  for (const auto& ws : stats.perWorker) expanded += ws.expanded;
  EXPECT_EQ(expanded, stats.statesDiscovered);
  // Graph-level stats agree with the engine's view after install.
  EXPECT_EQ(g.stats().statesDiscovered, stats.statesDiscovered);
  std::string why;
  EXPECT_TRUE(g.checkConsistent(&why)) << why;
}

TEST(ObsMetrics, PipelinedExploreFlushesPipelineCountersWithBoundedWait) {
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  obs::Registry reg;
  ExplorationPolicy policy;
  policy.threads = 2;
  policy.pipeline = PipelineMode::On;
  policy.metrics = &reg;
  const auto t0 = std::chrono::steady_clock::now();
  const ExploreStats stats = exploreReachable(g, root, policy);
  const auto wallNs = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  ASSERT_TRUE(stats.pipeline.pipelined);
  // Registry mirrors the engine's tallies exactly.
  EXPECT_EQ(reg.value("explorer.pipeline.levels_overlapped"),
            stats.pipeline.levelsOverlapped);
  EXPECT_EQ(reg.value("explorer.pipeline.install_wait_ns"),
            stats.pipeline.installWaitNs);
  EXPECT_EQ(reg.value("explorer.pipeline.bulk_action_batches"),
            stats.pipeline.bulkActionBatches);
  // The install pump runs on one thread: its cumulative blocked time can
  // never exceed the run's wall clock. A violation means the idle-flush /
  // level-completion publication regressed into busy-wait double counting.
  EXPECT_LE(stats.pipeline.installWaitNs, wallNs);
  // Bulk pinning fires at most once per installed node, so batches are
  // bounded by edges; and a run with edges must have pinned something.
  EXPECT_LE(stats.pipeline.bulkActionBatches, stats.edgesComputed);
  EXPECT_GT(stats.pipeline.bulkActionBatches, 0u);
  EXPECT_GT(stats.edgesComputed, 0u);
}

TEST(ObsMetrics, PipelineOffReportsNoPipelineCounters) {
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  obs::Registry reg;
  ExplorationPolicy policy;
  policy.threads = 2;
  policy.pipeline = PipelineMode::Off;
  policy.metrics = &reg;
  const ExploreStats stats = exploreReachable(g, root, policy);
  EXPECT_FALSE(stats.pipeline.pipelined);
  EXPECT_EQ(reg.value("explorer.pipeline.levels_overlapped"), 0u);
  EXPECT_EQ(reg.value("explorer.pipeline.install_wait_ns"), 0u);
  EXPECT_EQ(reg.value("explorer.pipeline.bulk_action_batches"), 0u);
}

TEST(ObsMetrics, SerialExploreFlushesFrontierPeak) {
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  obs::Registry reg;
  ExplorationPolicy policy;  // threads = 1
  policy.metrics = &reg;
  const ExploreStats stats = exploreReachable(g, root, policy);
  EXPECT_EQ(reg.value("explore.states_discovered"), stats.statesDiscovered);
  EXPECT_EQ(reg.value("explore.edges_computed"), stats.edgesComputed);
  EXPECT_GT(reg.value("explore.frontier_peak"), 0u);
  EXPECT_EQ(reg.value("explore.frontier_peak"), stats.frontierPeak);
}

TEST(ObsMetrics, RegistryPrimitives) {
  obs::Registry reg;
  reg.add("a", 2);
  reg.add("a", 3);
  EXPECT_EQ(reg.value("a"), 5u);
  reg.maxOf("m", 7);
  reg.maxOf("m", 4);
  EXPECT_EQ(reg.value("m"), 7u);
  reg.addTime("t", 100);
  reg.addTime("t", 50);
  EXPECT_EQ(reg.timer("t").wallNs, 150u);
  EXPECT_EQ(reg.timer("t").count, 2u);
  reg.derive("d", 0.5);
  ASSERT_EQ(reg.derived().size(), 1u);
  EXPECT_DOUBLE_EQ(reg.derived()[0].second, 0.5);
  // Null-registry timer must be inert.
  { obs::ScopedTimer t(nullptr, "never"); }
  EXPECT_EQ(reg.timer("never").count, 0u);
}

TEST(ObsMetrics, MetricsJsonIsWellFormed) {
  auto sys = relay(3, 1);
  obs::Registry reg;
  runPipeline(*sys, 2, 2, reg);
  reg.derive("cache_hit_rate", 0.75);
  const std::string path =
      testing::TempDir() + "/obs_metrics_test_metrics.json";
  ASSERT_TRUE(reg.writeMetricsJson(path, "obs_metrics_test"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  std::remove(path.c_str());
  // Structural sanity: balanced braces/brackets, the schema marker, and
  // the sections the schema requires.
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
  EXPECT_NE(doc.find("\"schema\": \"boosting-metrics-v8\""), std::string::npos);
  EXPECT_NE(doc.find("\"tool\": \"obs_metrics_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"timers\""), std::string::npos);
  EXPECT_NE(doc.find("\"derived\""), std::string::npos);
  EXPECT_NE(doc.find("graph.states_discovered"), std::string::npos);
  // v3 memory gauges: the flat-layout accounting plus peak RSS.
  EXPECT_NE(doc.find("graph.bytes_states"), std::string::npos);
  EXPECT_NE(doc.find("graph.bytes_edges"), std::string::npos);
  EXPECT_NE(doc.find("graph.bytes_index"), std::string::npos);
  EXPECT_NE(doc.find("process.peak_rss_bytes"), std::string::npos);
  EXPECT_NE(doc.find("explorer.worker0.expanded"), std::string::npos);
}

TEST(ObsMetrics, TraceWriterEmitsOneJsonObjectPerLine) {
  const std::string path = testing::TempDir() + "/obs_metrics_test_trace.jsonl";
  {
    std::string err;
    auto tw = obs::TraceWriter::open(path, &err);
    ASSERT_TRUE(tw) << err;
    tw->event("alpha", {{"i", 1}, {"s", "x\"y"}});
    tw->event("beta", {{"rate", 0.25}, {"flag", true}});
    EXPECT_EQ(tw->eventsWritten(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ev\":"), std::string::npos);
    EXPECT_NE(line.find("\"t_ns\":"), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(ObsMetrics, RunnerFlushesScheduleEvents) {
  auto sys = relay(2, 0);
  obs::Registry reg;
  sim::RunConfig rc;
  rc.inits = sim::binaryInits(2, 0b01);
  rc.metrics = &reg;
  const sim::RunResult rr = sim::run(*sys, rc);
  EXPECT_EQ(reg.value("runner.runs"), 1u);
  EXPECT_EQ(reg.value("runner.steps"), rr.steps);
  EXPECT_EQ(reg.value(std::string("runner.stopped.") +
                      sim::runReasonName(rr.reason)),
            1u);
}

}  // namespace
}  // namespace boosting::analysis
