// Incremental-hash consistency fuzz: long seeded random task walks over the
// relay and TOB fixtures, asserting after every step that the incrementally
// maintained combined hash (per-slot caches + Zobrist-style recombination of
// only the touched slots) equals a from-scratch rehash of every slot, and
// that value equality stays coherent with hashing across random copies.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "ioa/system.h"
#include "processes/relay_consensus.h"
#include "processes/tob_consensus.h"

using namespace boosting;

namespace {

// One seeded walk: from a random initialization, repeatedly pick a random
// enabled task (occasionally injecting a failure or forking a copy) and
// check the incremental hash against fullRehash() at every step.
void fuzzWalk(const ioa::System& sys, std::uint64_t seed, int steps) {
  std::mt19937_64 rng(seed);
  const int n = sys.processCount();

  ioa::SystemState s = sys.initialState();
  for (int i = 0; i < n; ++i) {
    sys.injectInit(s, i, util::Value(static_cast<int>(rng() % 2)));
    ASSERT_EQ(s.hash(), s.fullRehash()) << "after init, seed=" << seed;
  }

  std::vector<ioa::SystemState> forks;
  int failsLeft = 1;
  const auto& tasks = sys.allTasks();
  for (int step = 0; step < steps; ++step) {
    // Collect the enabled tasks, pick one uniformly.
    std::vector<const ioa::TaskId*> enabled;
    for (const auto& t : tasks) {
      if (sys.enabled(s, t)) enabled.push_back(&t);
    }
    if (enabled.empty()) break;

    const std::uint64_t roll = rng() % 100;
    if (roll < 10) {
      // Fork: keep a copy around so later mutations exercise shared slots.
      forks.push_back(s);
    } else if (roll < 15 && failsLeft > 0) {
      sys.injectFail(s, static_cast<int>(rng() % n));
      --failsLeft;
    } else {
      const ioa::TaskId& t = *enabled[rng() % enabled.size()];
      auto a = sys.enabled(s, t);
      ASSERT_TRUE(a.has_value());
      sys.applyInPlace(s, *a);
    }

    ASSERT_EQ(s.hash(), s.fullRehash())
        << "step " << step << ", seed=" << seed;
    ASSERT_TRUE(s.equals(s));
  }

  // Every fork must still be self-consistent (mutations of `s` since the
  // fork must not have leaked through shared slots), and hash/equals must
  // agree pairwise.
  for (const auto& f : forks) {
    ASSERT_EQ(f.hash(), f.fullRehash()) << "fork, seed=" << seed;
    if (f.equals(s)) {
      ASSERT_EQ(f.hash(), s.hash()) << "seed=" << seed;
    }
  }
}

TEST(HashConsistencyFuzzTest, RelayFixtureWalks) {
  processes::RelaySystemSpec spec;
  spec.processCount = 3;
  spec.objectResilience = 0;
  spec.addScratchRegister = false;
  auto sys = processes::buildRelayConsensusSystem(spec);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    fuzzWalk(*sys, 0xbead0000 + seed, 200);
  }
}

TEST(HashConsistencyFuzzTest, TobFixtureWalks) {
  processes::TOBConsensusSpec spec;
  spec.processCount = 3;
  auto sys = processes::buildTOBConsensusSystem(spec);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    fuzzWalk(*sys, 0xfeed0000 + seed, 200);
  }
}

TEST(HashConsistencyFuzzTest, EqualWalksFromDifferentPathsAgreeOnHash) {
  // Two states built independently (no structural sharing at all) that are
  // value-equal must produce the same combined hash, including after the
  // incremental machinery has retracted and re-added slot contributions in
  // different orders.
  processes::RelaySystemSpec spec;
  spec.processCount = 2;
  spec.objectResilience = 0;
  spec.addScratchRegister = false;
  auto sys = processes::buildRelayConsensusSystem(spec);

  ioa::SystemState a = sys->initialState();
  ioa::SystemState b = sys->initialState();
  // Same inits, applied in opposite endpoint order.
  sys->injectInit(a, 0, util::Value(1));
  sys->injectInit(a, 1, util::Value(0));
  sys->injectInit(b, 1, util::Value(0));
  sys->injectInit(b, 0, util::Value(1));
  ASSERT_TRUE(a.equals(b));
  ASSERT_EQ(a.hash(), b.hash());
  ASSERT_EQ(a.hash(), a.fullRehash());

  // Drive both along the same deterministic task sequence and keep checking.
  for (int step = 0; step < 100; ++step) {
    const ioa::TaskId* pick = nullptr;
    for (const auto& t : sys->allTasks()) {
      if (sys->enabled(a, t)) {
        pick = &t;
        break;
      }
    }
    if (!pick) break;
    auto aa = sys->enabled(a, *pick);
    auto ab = sys->enabled(b, *pick);
    ASSERT_TRUE(aa && ab);
    sys->applyInPlace(a, *aa);
    sys->applyInPlace(b, *ab);
    ASSERT_TRUE(a.equals(b)) << "step " << step;
    ASSERT_EQ(a.hash(), b.hash()) << "step " << step;
    ASSERT_EQ(a.hash(), a.fullRehash()) << "step " << step;
  }
}

}  // namespace
