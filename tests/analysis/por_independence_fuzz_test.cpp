// Fuzz oracle for the POR independence relation: the policy's ample sets
// implicitly claim that every (ample, non-ample) pair of enabled tasks is
// independent -- the non-ample step neither disables the ample one nor
// breaks the commuting diamond. The footprint tables behind that claim
// are DECLARED by the components (ioa::Automaton::taskStructure), so this
// suite validates them against ground truth: sample reachable states of
// every fixture, and for each proper ample set check, pair by pair, that
//   (1) enabledness is preserved in both orders (the diamond closes), and
//   (2) the two application orders land in the SAME state (s.a.b == s.b.a
//       by deep SystemState equality).
// A violation prints the seed, fixture and state index, which replays the
// exact sampled state deterministically.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/bivalence.h"
#include "analysis/por.h"
#include "analysis/state_graph.h"
#include "processes/flooding_consensus.h"
#include "processes/relay_consensus.h"

namespace boosting::analysis {
namespace {

std::unique_ptr<ioa::System> makeFixture(const std::string& name) {
  const auto policy = services::DummyPolicy::PreferDummy;
  if (name == "relay3") {
    processes::RelaySystemSpec spec;
    spec.processCount = 3;
    spec.objectResilience = 1;
    spec.policy = policy;
    return processes::buildRelayConsensusSystem(spec);
  }
  if (name == "relay4") {
    processes::RelaySystemSpec spec;
    spec.processCount = 4;
    spec.objectResilience = 1;
    spec.policy = policy;
    return processes::buildRelayConsensusSystem(spec);
  }
  if (name == "bridge3") {
    processes::BridgeSystemSpec spec;
    spec.processCount = 3;
    spec.policy = policy;
    return processes::buildBridgeConsensusSystem(spec);
  }
  processes::FloodingConsensusSpec spec;  // "flooding3"
  spec.processCount = 3;
  spec.channelResilience = 0;
  spec.policy = policy;
  return processes::buildFloodingConsensusSystem(spec);
}

// Deterministic splitmix64: the replayable seed IS the test's only input.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Collect reachable states from every canonical initialization by plain
// BFS over the FULL transition relation (no symmetry, no POR): the oracle
// must be independent of the machinery under test.
std::vector<ioa::SystemState> reachableSample(const ioa::System& sys,
                                              std::size_t cap) {
  StateGraph g(sys);
  std::deque<NodeId> frontier;
  std::vector<char> queued;
  auto enqueue = [&](NodeId id) {
    if (id >= queued.size()) queued.resize(id + 1, 0);
    if (queued[id]) return;
    queued[id] = 1;
    frontier.push_back(id);
  };
  for (int ones = 0; ones <= sys.processCount(); ++ones) {
    enqueue(g.intern(canonicalInitialization(sys, ones)));
  }
  while (!frontier.empty() && g.size() < cap) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    for (const EdgeView e : g.successors(id)) enqueue(e.to);
  }
  std::vector<ioa::SystemState> out;
  out.reserve(g.size());
  for (NodeId id = 0; id < g.size(); ++id) out.push_back(g.state(id));
  return out;
}

void checkIndependenceAt(const ioa::System& sys, const PorPolicy& por,
                         const ioa::SystemState& s, const std::string& ctx) {
  const std::vector<ioa::TaskId>& tasks = sys.allTasks();
  std::vector<std::optional<ioa::Action>> acts(tasks.size());
  std::vector<const ioa::Action*> ptrs(tasks.size(), nullptr);
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    acts[ti] = sys.enabled(s, tasks[ti]);
    if (acts[ti]) ptrs[ti] = &*acts[ti];
  }
  std::uint64_t enabledMask = 0;
  const std::uint64_t ample = por.ampleMask(ptrs, &enabledMask);
  ASSERT_EQ(ample & ~enabledMask, 0u) << ctx << ": ample not subset";
  if (ample == enabledMask) return;  // full expansion claims nothing
  ASSERT_NE(ample, 0u) << ctx << ": C0 violated (empty ample)";

  for (std::size_t ai = 0; ai < tasks.size(); ++ai) {
    if (((ample >> ai) & 1u) == 0) continue;
    // C2: a proper ample set never postpones a decide.
    EXPECT_NE(acts[ai]->kind, ioa::ActionKind::EnvDecide)
        << ctx << ": decide in proper ample set";
    const ioa::SystemState sa = sys.apply(s, *acts[ai]);
    for (std::size_t bi = 0; bi < tasks.size(); ++bi) {
      if (((enabledMask >> bi) & 1u) == 0 || ((ample >> bi) & 1u) != 0) {
        continue;
      }
      const std::string pair = ctx + ": ample " + tasks[ai].str() +
                               " vs enabled " + tasks[bi].str();
      // (1) the diamond closes: each step stays enabled after the other.
      const std::optional<ioa::Action> bAfterA = sys.enabled(sa, tasks[bi]);
      ASSERT_TRUE(bAfterA) << pair << ": ample step disabled the other";
      const ioa::SystemState sb = sys.apply(s, *acts[bi]);
      const std::optional<ioa::Action> aAfterB = sys.enabled(sb, tasks[ai]);
      ASSERT_TRUE(aAfterB) << pair << ": non-ample step disabled ample";
      // (2) both orders commute to the identical state.
      const ioa::SystemState sab = sys.apply(sa, *bAfterA);
      const ioa::SystemState sba = sys.apply(sb, *aAfterB);
      ASSERT_TRUE(sab.equals(sba)) << pair << ": orders do not commute";
    }
  }
}

TEST(PorIndependenceFuzz, SampledReachableStatesCommute) {
  const std::vector<std::string> fixtures = {"relay3", "relay4", "bridge3",
                                             "flooding3"};
  for (const std::string& name : fixtures) {
    auto sys = makeFixture(name);
    const auto por = PorPolicy::forSystem(*sys, PorMode::On);
    ASSERT_FALSE(por->trivial())
        << name << ": " << por->disabledReason();
    const std::vector<ioa::SystemState> states =
        reachableSample(*sys, /*cap=*/1500);
    ASSERT_FALSE(states.empty());
    // Deterministic sample of ~160 states per fixture; the (seed, index)
    // pair printed on failure replays the exact state.
    const std::uint64_t seed = 0xb0057ull;
    std::uint64_t rng = seed;
    const std::size_t draws = std::min<std::size_t>(160, states.size());
    for (std::size_t k = 0; k < draws; ++k) {
      const std::size_t idx = mix(rng) % states.size();
      const std::string ctx = name + " seed=" + std::to_string(seed) +
                              " draw=" + std::to_string(k) +
                              " state=" + std::to_string(idx);
      checkIndependenceAt(*sys, *por, states[idx], ctx);
      if (HasFatalFailure()) return;
    }
  }
}

TEST(PorIndependenceFuzz, AmpleDecisionIsAPureFunctionOfTheState) {
  // The memoized decision must be stable across repeated queries (the
  // parallel explorer relies on this for determinism).
  auto sys = makeFixture("relay3");
  const auto por = PorPolicy::forSystem(*sys, PorMode::On);
  ASSERT_FALSE(por->trivial());
  const std::vector<ioa::SystemState> states = reachableSample(*sys, 400);
  const std::vector<ioa::TaskId>& tasks = sys->allTasks();
  for (std::size_t idx = 0; idx < states.size(); idx += 7) {
    std::vector<std::optional<ioa::Action>> acts(tasks.size());
    std::vector<const ioa::Action*> ptrs(tasks.size(), nullptr);
    for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
      acts[ti] = sys->enabled(states[idx], tasks[ti]);
      if (acts[ti]) ptrs[ti] = &*acts[ti];
    }
    std::uint64_t e1 = 0, e2 = 0;
    const std::uint64_t m1 = por->ampleMask(ptrs, &e1);
    const std::uint64_t m2 = por->ampleMask(ptrs, &e2);
    EXPECT_EQ(m1, m2) << "state " << idx;
    EXPECT_EQ(e1, e2) << "state " << idx;
  }
}

}  // namespace
}  // namespace boosting::analysis
