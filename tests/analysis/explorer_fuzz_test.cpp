// Explorer fuzzing: seeded random systems (script clients over a random
// built-in sequential type with small domains) explored serially and in
// parallel. The confluence argument (analysis/parallel_explorer.h) says
// the reachable state SET is a property of the root alone; these tests
// check it on systems with no hand-written structure, comparing the full
// canonical graphs and, independently, the sorted multiset of state
// hashes -- a numbering-free fingerprint of the reachable set. Each case
// additionally draws a (symmetry x por) reduction config from its seed:
// determinism must hold cell by cell of that matrix, including the cells
// where a policy inspects the random system and declines.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/parallel_explorer.h"
#include "analysis/por.h"
#include "analysis/state_graph.h"
#include "analysis/symmetry.h"
#include "processes/script_client.h"
#include "services/canonical_atomic.h"
#include "types/builtin_types.h"
#include "util/rng.h"

namespace boosting::analysis {
namespace {

using processes::ScriptClientProcess;
using services::CanonicalAtomicObject;
using util::Value;

constexpr int kServiceId = 7;

struct FuzzCase {
  std::uint64_t seed;
  int clients;
  int opsPerClient;
  unsigned threads;
  bool symmetry = false;
  bool por = false;
};

types::SequentialType randomType(util::Rng& rng) {
  switch (rng.nextBelow(7)) {
    case 0: return types::registerType();
    case 1: return types::binaryConsensusType();
    case 2: return types::testAndSetType();
    case 3: return types::compareAndSwapType();
    case 4: return types::counterType();
    case 5: return types::fetchAddType();
    default: return types::queueType();
  }
}

// A random small system: `clients` script clients driving one canonical
// atomic object of a random type with random short scripts.
std::unique_ptr<ioa::System> randomSystem(std::uint64_t seed, int clients,
                                          int opsPerClient) {
  util::Rng rng(seed);
  const types::SequentialType type = randomType(rng);
  auto sys = std::make_unique<ioa::System>();
  for (int i = 0; i < clients; ++i) {
    std::vector<Value> script;
    for (int k = 0; k < opsPerClient; ++k) {
      const auto& samples = type.sampleInvocations;
      script.push_back(samples[rng.nextBelow(samples.size())]);
    }
    const int depth = 1 + static_cast<int>(rng.nextBelow(2));
    sys->addProcess(std::make_shared<ScriptClientProcess>(
        i, kServiceId, std::move(script), depth));
  }
  std::vector<int> all;
  for (int i = 0; i < clients; ++i) all.push_back(i);
  services::CanonicalAtomicObject::Options opts;
  opts.policy = services::DummyPolicy::PreferDummy;
  const int resilience = static_cast<int>(rng.nextBelow(clients));
  auto obj = std::make_shared<CanonicalAtomicObject>(type, kServiceId, all,
                                                     resilience, opts);
  sys->addService(obj, obj->meta());
  return sys;
}

std::vector<std::size_t> sortedStateHashes(const StateGraph& g) {
  std::vector<std::size_t> hashes;
  hashes.reserve(g.size());
  for (NodeId id = 0; id < g.size(); ++id) hashes.push_back(g.state(id).hash());
  std::sort(hashes.begin(), hashes.end());
  return hashes;
}

class ExplorerFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ExplorerFuzz, ParallelReachableSetMatchesSerial) {
  const FuzzCase& c = GetParam();
  const SymmetryMode symMode =
      c.symmetry ? SymmetryMode::On : SymmetryMode::Off;
  const PorMode porMode = c.por ? PorMode::On : PorMode::Off;

  auto sysSerial = randomSystem(c.seed, c.clients, c.opsPerClient);
  StateGraph gs(*sysSerial, SymmetryPolicy::forSystem(*sysSerial, symMode),
                PorPolicy::forSystem(*sysSerial, porMode));
  NodeId rootS = gs.intern(sysSerial->initialState());
  auto statsS = exploreReachable(gs, rootS, ExplorationPolicy{1});

  auto sysPar = randomSystem(c.seed, c.clients, c.opsPerClient);
  StateGraph gp(*sysPar, SymmetryPolicy::forSystem(*sysPar, symMode),
                PorPolicy::forSystem(*sysPar, porMode));
  NodeId rootP = gp.intern(sysPar->initialState());
  auto statsP = exploreReachable(gp, rootP, ExplorationPolicy{c.threads});

  // The same policy decision must be reached over identically-built
  // systems (it depends only on the declared structure).
  ASSERT_EQ(gs.porActive(), gp.porActive());
  ASSERT_EQ(gs.symmetryActive(), gp.symmetryActive());

  // Set-level fingerprint (numbering-free).
  EXPECT_EQ(statsP.statesDiscovered, statsS.statesDiscovered)
      << "seed=" << c.seed << " threads=" << c.threads;
  EXPECT_EQ(sortedStateHashes(gp), sortedStateHashes(gs));

  // Canonical-numbering equivalence: identical graphs node by node.
  ASSERT_EQ(gp.size(), gs.size());
  for (NodeId id = 0; id < gs.size(); ++id) {
    ASSERT_TRUE(gs.state(id).equals(gp.state(id)))
        << "seed=" << c.seed << " node " << id;
    const auto se = gs.cachedSuccessors(id);
    const auto pe = gp.cachedSuccessors(id);
    ASSERT_EQ(se.has_value(), pe.has_value());
    if (se) {
      ASSERT_EQ(se->size(), pe->size());
      for (std::size_t k = 0; k < se->size(); ++k) {
        EXPECT_EQ((*se)[k].task, (*pe)[k].task);
        EXPECT_EQ((*se)[k].to, (*pe)[k].to);
      }
    }
    if (!gs.porActive()) continue;
    // Under POR the reduced tier must replicate too: same ample subset,
    // same edge order, or the same full-expansion alias at every node.
    const auto sr = gs.cachedReducedSuccessors(id);
    const auto pr = gp.cachedReducedSuccessors(id);
    ASSERT_EQ(sr.has_value(), pr.has_value()) << "node " << id;
    if (!sr) continue;
    ASSERT_EQ(sr->size(), pr->size()) << "node " << id;
    for (std::size_t k = 0; k < sr->size(); ++k) {
      EXPECT_EQ((*sr)[k].task, (*pr)[k].task) << "node " << id;
      EXPECT_EQ((*sr)[k].to, (*pr)[k].to) << "node " << id;
    }
  }
}

std::vector<FuzzCase> fuzzCases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const int clients = 2 + static_cast<int>(seed % 2);
    const int ops = 2 + static_cast<int>(seed % 3);
    cases.push_back({seed, clients, ops, 2 + 2 * (seed % 4 == 0 ? 1u : 0u)});
    cases.push_back({seed + 1000, clients, ops, 8});
    // Reduction matrix drawn from the seed: the same random system under
    // symmetry and/or POR, serial vs parallel.
    cases.push_back({seed, clients, ops, 4, (seed % 3) == 1, true});
    cases.push_back({seed + 2000, clients, ops, 8, (seed % 2) == 0,
                     (seed % 2) == 1});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, ExplorerFuzz,
                         ::testing::ValuesIn(fuzzCases()));

}  // namespace
}  // namespace boosting::analysis
