// Differential battery for the sharded phase-1 state table (PR 7): hash-
// owned shards with per-worker batch routing are a STORAGE and SCHEDULING
// change only -- the deterministic canonical install (phase 2) renumbers
// every run back into the exact serial discovery order, so serial, 1-shard
// and k-shard explorations at any thread count must be bit-identical: same
// node ids, same compact edge triples, same action intern indices, same
// witnesses, same verdicts. The battery has three tiers:
//   1. pure fuzz of the shard-router arithmetic (analysis::shard_router,
//      the exact functions the engine calls): every hash routes to exactly
//      one shard, shard selection and in-shard probing consume disjoint
//      hash bits, resolved counts are powers of two in [1, 256];
//   2. graph-layout equality: serial vs engine runs across a threads x
//      shards matrix, with and without symmetry/POR, down to the intern
//      indices inside the compact edges (renumbering is the identity
//      bijection onto the serial numbering, and therefore stable across
//      shard counts);
//   3. pipeline equality on the n=3/4 fixtures: verdict, per-init valence,
//      bivalent init, hook shape, fair cycle, and byte-identical concrete
//      witnesses.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "analysis/adversary.h"
#include "analysis/bivalence.h"
#include "analysis/parallel_explorer.h"
#include "analysis/por.h"
#include "analysis/state_graph.h"
#include "analysis/symmetry.h"
#include "processes/flooding_consensus.h"
#include "processes/relay_consensus.h"

namespace boosting::analysis {
namespace {

std::unique_ptr<ioa::System> relayFixture(int n, int f) {
  processes::RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildRelayConsensusSystem(spec);
}

std::unique_ptr<ioa::System> floodingFixture(int n, int f) {
  processes::FloodingConsensusSpec spec;
  spec.processCount = n;
  spec.channelResilience = f;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildFloodingConsensusSystem(spec);
}

// ---------------------------------------------------------------------------
// Tier 1: router arithmetic fuzz (dense_set_fuzz_test.cpp style -- random
// inputs against properties, seeds logged for replay).

TEST(ShardRouterFuzz, ResolvedCountIsPowerOfTwoInRange) {
  for (unsigned requested = 0; requested <= 600; ++requested) {
    for (unsigned workers : {1u, 2u, 3u, 4u, 7u, 8u, 200u, 256u, 1000u}) {
      const unsigned s = shard_router::resolveShardCount(requested, workers);
      EXPECT_GE(s, 1u) << requested << "/" << workers;
      EXPECT_LE(s, shard_router::kMaxShards) << requested << "/" << workers;
      EXPECT_EQ(s & (s - 1), 0u)
          << "not a power of two: " << s << " from requested=" << requested
          << " workers=" << workers;
      // Auto mode gives one shard per worker (rounded up, clamped); an
      // explicit request wins over the worker count.
      if (requested == 0) {
        EXPECT_GE(s, std::min<unsigned>(workers, shard_router::kMaxShards));
        EXPECT_LT(static_cast<std::size_t>(s), 2 * std::bit_ceil(
            std::min<std::size_t>(workers, shard_router::kMaxShards)));
      } else {
        EXPECT_EQ(s, std::min<std::size_t>(std::bit_ceil(
                         static_cast<std::size_t>(requested)),
                     shard_router::kMaxShards));
      }
    }
  }
}

TEST(ShardRouterFuzz, EveryHashRoutesToExactlyOneShard) {
  std::mt19937_64 rng(0x5eed7001);
  SCOPED_TRACE("seed 0x5eed7001");
  for (int round = 0; round < 20000; ++round) {
    const std::size_t hash = rng();
    for (unsigned shardCount = 1; shardCount <= shard_router::kMaxShards;
         shardCount *= 2) {
      const std::size_t owner = shard_router::shardIndexOf(hash, shardCount);
      ASSERT_LT(owner, shardCount);
      // Routing is a pure function of (hash, shardCount): re-asking gives
      // the same owner, and no other shard claims the hash.
      ASSERT_EQ(owner, shard_router::shardIndexOf(hash, shardCount));
      // Refining the shard count splits each shard without reshuffling:
      // the owner under 2k shards maps back onto the owner under k.
      if (shardCount > 1) {
        ASSERT_EQ(owner & (shardCount / 2 - 1),
                  shard_router::shardIndexOf(hash, shardCount / 2));
      }
    }
  }
}

TEST(ShardRouterFuzz, RoutingPartitionsUniformHashesEvenly) {
  // Hash-owned sharding only balances if the low bits are well mixed;
  // over uniform hashes every shard must receive its fair share (loose
  // 4-sigma bound). This is a property of the router, not the hash mix,
  // but it guards against a future routing change that eats dead bits.
  std::mt19937_64 rng(0x5eed7002);
  constexpr unsigned kShards = 16;
  constexpr int kDraws = 64000;
  std::vector<int> perShard(kShards, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++perShard[shard_router::shardIndexOf(rng(), kShards)];
  }
  const double expect = static_cast<double>(kDraws) / kShards;
  const double sigma4 = 4.0 * std::sqrt(expect);
  for (unsigned s = 0; s < kShards; ++s) {
    EXPECT_NEAR(static_cast<double>(perShard[s]), expect, sigma4)
        << "shard " << s << " starved or flooded";
  }
}

TEST(ShardRouterFuzz, ProbeStartUsesBitsAboveShardSelection) {
  std::mt19937_64 rng(0x5eed7003);
  for (int round = 0; round < 20000; ++round) {
    const std::size_t hash = rng();
    for (unsigned shardBits : {0u, 1u, 2u, 4u, 8u}) {
      const std::size_t indexMask = (std::size_t{1} << 10) - 1;
      const std::size_t start =
          shard_router::probeStart(hash, shardBits, indexMask);
      ASSERT_LE(start, indexMask);
      // Flipping any shard-selection bit must not move the probe start:
      // the two roles consume disjoint hash bits.
      for (unsigned b = 0; b < shardBits; ++b) {
        ASSERT_EQ(start, shard_router::probeStart(hash ^ (std::size_t{1} << b),
                                                  shardBits, indexMask));
      }
      // And the first bit ABOVE shard selection is the probe's lowest bit:
      // flipping it moves the start by exactly one slot.
      ASSERT_EQ(start ^ 1u,
                shard_router::probeStart(hash ^ (std::size_t{1} << shardBits),
                                         shardBits, indexMask));
    }
  }
}

// ---------------------------------------------------------------------------
// Tier 2: graph-layout equality across the threads x shards matrix.

struct Cell {
  unsigned threads;
  unsigned shards;
  // Auto engages the pipelined install at threads >= 2 already; the
  // explicit On/Off cells pin both code paths independently of the
  // heuristic, so a future Auto change cannot silently drop coverage.
  PipelineMode pipeline = PipelineMode::Auto;
};

constexpr Cell kCells[] = {{1, 1},
                           {1, 4},
                           {2, 2},
                           {4, 1},
                           {4, 4},
                           {2, 2, PipelineMode::On},
                           {4, 4, PipelineMode::Off}};

const char* pipeName(PipelineMode m) {
  switch (m) {
    case PipelineMode::Auto: return "auto";
    case PipelineMode::On: return "on";
    case PipelineMode::Off: return "off";
  }
  return "?";
}

ExplorationPolicy cellPolicy(const Cell& c) {
  ExplorationPolicy pol;
  pol.threads = c.threads;
  pol.shards = c.shards;
  pol.pipeline = c.pipeline;
  return pol;
}

// Bit-identity of two explored graphs: node numbering, states, compact
// edge triples (task/action/to intern indices), witness paths, and the
// action pool itself.
void expectGraphsBitIdentical(const StateGraph& gs, const StateGraph& gp,
                              const std::string& label) {
  ASSERT_EQ(gs.size(), gp.size()) << label;
  ASSERT_EQ(gs.actionPoolSize(), gp.actionPoolSize()) << label;
  for (NodeId id = 0; id < gs.size(); ++id) {
    ASSERT_TRUE(gs.state(id).equals(gp.state(id))) << label << " node " << id;
    EXPECT_EQ(gs.rootOf(id), gp.rootOf(id)) << label << " node " << id;
    const auto se = gs.cachedSuccessors(id);
    const auto pe = gp.cachedSuccessors(id);
    ASSERT_EQ(se.has_value(), pe.has_value()) << label << " node " << id;
    if (!se) continue;
    ASSERT_EQ(se->size(), pe->size()) << label << " node " << id;
    for (std::size_t k = 0; k < se->size(); ++k) {
      const CompactEdge& a = se->data()[k];
      const CompactEdge& b = pe->data()[k];
      ASSERT_EQ(a.task, b.task) << label << " node " << id << " edge " << k;
      ASSERT_EQ(a.action, b.action) << label << " node " << id << " edge " << k;
      ASSERT_EQ(a.to, b.to) << label << " node " << id << " edge " << k;
    }
    const auto sp = gs.pathTo(id);
    const auto pp = gp.pathTo(id);
    ASSERT_EQ(sp.size(), pp.size()) << label << " node " << id;
    for (std::size_t k = 0; k < sp.size(); ++k) {
      ASSERT_EQ(sp[k].task, pp[k].task) << label << " node " << id;
      ASSERT_EQ(sp[k].action, pp[k].action) << label << " node " << id;
      ASSERT_EQ(sp[k].to, pp[k].to) << label << " node " << id;
    }
  }
  for (std::uint32_t a = 0; a < gs.actionPoolSize(); ++a) {
    ASSERT_EQ(gs.actionAt(a), gp.actionAt(a)) << label << " action " << a;
  }
}

enum class Mode { Plain, Sym, SymPor };

// Shard-tally sanity on an engine run: every discovered state was routed
// into exactly one shard, every active (worker, shard) pair flushed, and
// cross-shard edges never exceed the edges computed. Under POR phase 1
// interns the FULL successor set while the canonical install replays the
// serial reduced decisions and reports the reduced count, so routed is an
// upper bound there rather than an equality.
void expectShardTalliesSane(const ExploreStats& stats, const Cell& c,
                            Mode mode) {
  if (c.threads == 1 && c.shards <= 1) return;  // serial path: no tallies
  EXPECT_EQ(stats.shard.shards,
            shard_router::resolveShardCount(c.shards, c.threads));
  if (mode == Mode::SymPor) {
    EXPECT_GE(stats.shard.routed, stats.statesDiscovered);
  } else {
    EXPECT_EQ(stats.shard.routed, stats.statesDiscovered);
  }
  EXPECT_GE(stats.shard.batchFlushes, stats.shard.activePairs);
  EXPECT_LE(stats.shard.crossShardEdges, stats.edgesComputed);
}

const char* modeName(Mode m) {
  switch (m) {
    case Mode::Plain: return "plain";
    case Mode::Sym: return "sym";
    case Mode::SymPor: return "sym+por";
  }
  return "?";
}

// Build a graph for the fixture under the given reduction mode; each run
// gets its own System instance so transition memos cannot leak across.
struct Explored {
  std::unique_ptr<ioa::System> sys;
  std::unique_ptr<StateGraph> g;
  ExploreStats stats;
};

Explored explore(std::unique_ptr<ioa::System> sys, Mode mode,
            const ExplorationPolicy& pol) {
  Explored r;
  r.sys = std::move(sys);
  switch (mode) {
    case Mode::Plain:
      r.g = std::make_unique<StateGraph>(*r.sys);
      break;
    case Mode::Sym:
      r.g = std::make_unique<StateGraph>(
          *r.sys, SymmetryPolicy::forSystem(*r.sys, SymmetryMode::On));
      break;
    case Mode::SymPor:
      r.g = std::make_unique<StateGraph>(
          *r.sys, SymmetryPolicy::forSystem(*r.sys, SymmetryMode::On),
          PorPolicy::forSystem(*r.sys, PorMode::On));
      break;
  }
  const NodeId root =
      r.g->intern(canonicalInitialization(*r.sys, r.sys->processCount() / 2));
  r.stats = exploreReachable(*r.g, root, pol);
  return r;
}

void runLayoutMatrix(std::unique_ptr<ioa::System> (*build)(), Mode mode) {
  const Explored serial = explore(build(), mode, ExplorationPolicy{});
  ASSERT_GT(serial.g->size(), 0u);
  for (const Cell& c : kCells) {
    const Explored cell = explore(build(), mode, cellPolicy(c));
    const std::string label = std::string(modeName(mode)) + " t" +
                              std::to_string(c.threads) + "/s" +
                              std::to_string(c.shards) + "/p" +
                              pipeName(c.pipeline);
    EXPECT_EQ(serial.stats.statesDiscovered, cell.stats.statesDiscovered)
        << label;
    if (mode == Mode::SymPor) {
      // The engine expands full successor sets in phase 1 and lets the
      // canonical install replay the serial ample decisions, so it
      // evaluates at least as many transitions as the reduced serial BFS.
      EXPECT_GE(cell.stats.edgesComputed, serial.stats.edgesComputed) << label;
    } else {
      EXPECT_EQ(serial.stats.edgesComputed, cell.stats.edgesComputed) << label;
    }
    expectShardTalliesSane(cell.stats, c, mode);
    expectGraphsBitIdentical(*serial.g, *cell.g, label);
  }
}

std::unique_ptr<ioa::System> relay30() { return relayFixture(3, 0); }
std::unique_ptr<ioa::System> relay31() { return relayFixture(3, 1); }
std::unique_ptr<ioa::System> flooding30() { return floodingFixture(3, 0); }

TEST(ShardEquivalence, LayoutBitIdenticalRelay30) {
  runLayoutMatrix(relay30, Mode::Plain);
}

TEST(ShardEquivalence, LayoutBitIdenticalRelay31) {
  runLayoutMatrix(relay31, Mode::Plain);
}

TEST(ShardEquivalence, LayoutBitIdenticalRelay31Symmetry) {
  runLayoutMatrix(relay31, Mode::Sym);
}

TEST(ShardEquivalence, LayoutBitIdenticalRelay31SymmetryPor) {
  runLayoutMatrix(relay31, Mode::SymPor);
}

TEST(ShardEquivalence, LayoutBitIdenticalFlooding30Symmetry) {
  runLayoutMatrix(flooding30, Mode::Sym);
}

TEST(ShardEquivalence, StableAcrossShardCountsWithoutSerialReference) {
  // Renumbering must be stable across shard counts on its own terms, not
  // only relative to the serial graph: 2 shards vs 4 shards at 2 threads.
  const Explored a = explore(relay31(), Mode::Plain, cellPolicy({2, 2}));
  const Explored b = explore(relay31(), Mode::Plain, cellPolicy({2, 4}));
  expectGraphsBitIdentical(*a.g, *b.g, "t2/s2 vs t2/s4");
}

// ---------------------------------------------------------------------------
// Tier 3: adversary-pipeline equality (verdict, valences, hook shape,
// concrete witnesses) on the n=3/4 fixtures.

AdversaryReport runPipeline(const ioa::System& sys, int claim, Mode mode,
                            unsigned threads, unsigned shards) {
  AdversaryConfig cfg;
  cfg.claimedFailures = claim;
  if (mode != Mode::Plain) cfg.symmetry = SymmetryMode::On;
  if (mode == Mode::SymPor) cfg.por = PorMode::On;
  cfg.exploration.threads = threads;
  cfg.exploration.shards = shards;
  return analyzeConsensusCandidate(sys, cfg);
}

void expectSameProofShape(const AdversaryReport& base,
                          const AdversaryReport& cell,
                          const std::string& label) {
  EXPECT_EQ(base.verdict, cell.verdict)
      << label << "\nbase: " << base.summary()
      << "\ncell: " << cell.summary();
  EXPECT_EQ(base.statesExplored, cell.statesExplored) << label;
  ASSERT_EQ(base.initializations.size(), cell.initializations.size()) << label;
  for (std::size_t i = 0; i < base.initializations.size(); ++i) {
    EXPECT_EQ(base.initializations[i].onesPrefix,
              cell.initializations[i].onesPrefix)
        << label;
    EXPECT_EQ(base.initializations[i].valence, cell.initializations[i].valence)
        << label << ": initialization " << base.initializations[i].onesPrefix;
  }
  EXPECT_EQ(base.bivalentInit.has_value(), cell.bivalentInit.has_value())
      << label;
  if (base.bivalentInit && cell.bivalentInit) {
    EXPECT_EQ(base.bivalentInit->onesPrefix, cell.bivalentInit->onesPrefix)
        << label;
  }
  EXPECT_EQ(base.hook.has_value(), cell.hook.has_value()) << label;
  EXPECT_EQ(base.fairCycle, cell.fairCycle) << label;
  // Witnesses byte-for-byte: the renumbering pass must not perturb the
  // tie-breaks the hook/adversary walk takes.
  ASSERT_EQ(base.witness.size(), cell.witness.size()) << label;
  for (std::size_t i = 0; i < base.witness.size(); ++i) {
    EXPECT_EQ(base.witness.actions()[i].str(), cell.witness.actions()[i].str())
        << label << ": witness diverges at action " << i;
  }
}

void expectWitnessReplays(const ioa::System& sys,
                          const AdversaryReport& report,
                          const std::string& label) {
  if (report.verdict != AdversaryReport::Verdict::TerminationViolation) return;
  ASSERT_FALSE(report.witness.empty()) << label;
  ioa::SystemState s = sys.initialState();
  for (const ioa::Action& a : report.witness.actions()) {
    ASSERT_NO_THROW(sys.applyInPlace(s, a)) << label << ": " << a.str();
  }
  EXPECT_EQ(report.witness.failedEndpoints(), report.witnessFailures) << label;
}

void runPipelineMatrix(const ioa::System& sys, int claim,
                       std::initializer_list<Mode> modes) {
  for (Mode mode : modes) {
    const AdversaryReport base = runPipeline(sys, claim, mode, 1, 0);
    for (const Cell& c : {Cell{1, 4}, Cell{4, 1}, Cell{4, 4}}) {
      const AdversaryReport cell =
          runPipeline(sys, claim, mode, c.threads, c.shards);
      const std::string label = std::string(modeName(mode)) + " t" +
                                std::to_string(c.threads) + "/s" +
                                std::to_string(c.shards);
      expectSameProofShape(base, cell, label);
      expectWitnessReplays(sys, cell, label);
    }
  }
}

TEST(ShardEquivalence, PipelineRelayN3FZero) {
  auto sys = relayFixture(3, 0);
  runPipelineMatrix(*sys, 1, {Mode::Plain, Mode::Sym, Mode::SymPor});
}

TEST(ShardEquivalence, PipelineRelayN3FOne) {
  // The genuinely-boosting claim (f = 1 -> 2): the heart of Theorem 2.
  auto sys = relayFixture(3, 1);
  runPipelineMatrix(*sys, 2, {Mode::Plain, Mode::Sym, Mode::SymPor});
}

TEST(ShardEquivalence, PipelineRelayN4FOne) {
  // n=4 is the expensive fixture: cover it with the stacked reduction
  // (the configuration the CLI defaults push users toward).
  auto sys = relayFixture(4, 1);
  runPipelineMatrix(*sys, 2, {Mode::SymPor});
}

TEST(ShardEquivalence, PipelineFloodingN3) {
  auto sys = floodingFixture(3, 0);
  runPipelineMatrix(*sys, 1, {Mode::Sym, Mode::SymPor});
}

}  // namespace
}  // namespace boosting::analysis
