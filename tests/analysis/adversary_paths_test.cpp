// The adversary engine's non-hook verdict paths, exercised by purpose-built
// broken candidates:
//   * a protocol that decides its own input -> failure-free AGREEMENT
//     violation caught by the exhaustive safety scan (step 1);
//   * a protocol that decides a constant    -> VALIDITY violation;
//   * a protocol that never decides         -> Null-valent initialization,
//     certified failure-free termination violation (step 2).
#include <gtest/gtest.h>

#include "analysis/adversary.h"
#include "processes/process.h"
#include "services/register.h"

namespace boosting::analysis {
namespace {

using ioa::Action;
using util::sym;
using util::Value;

// Minimal process state: the base fields plus a "decided" latch.
class LatchState final : public processes::ProcessStateBase {
 public:
  bool emitted = false;

  std::unique_ptr<ioa::AutomatonState> clone() const override {
    return std::make_unique<LatchState>(*this);
  }
  std::size_t hash() const override {
    std::size_t h = baseHash();
    util::hashValue(h, emitted);
    return h;
  }
  bool equals(const ioa::AutomatonState& other) const override {
    const auto* o = dynamic_cast<const LatchState*>(&other);
    return o != nullptr && baseEquals(*o) && emitted == o->emitted;
  }
  std::string str() const override {
    return std::string("latch") + (emitted ? " emitted" : "") + baseStr();
  }
};

// Decides its own input immediately: agreement breaks on mixed inputs.
class DecideOwnInputProcess final : public processes::ProcessBase {
 public:
  using ProcessBase::ProcessBase;
  std::string name() const override {
    return "P" + std::to_string(endpoint()) + "<own-input>";
  }
  std::unique_ptr<ioa::AutomatonState> initialState() const override {
    return std::make_unique<LatchState>();
  }

 protected:
  Action chooseAction(const processes::ProcessStateBase& s) const override {
    const auto& st = dynamic_cast<const LatchState&>(s);
    if (!st.input.isNil() && !st.emitted) {
      return Action::envDecide(endpoint(), sym("decide", st.input));
    }
    return Action::procDummy(endpoint());
  }
  void onRespond(processes::ProcessStateBase&, int,
                 const Value&) const override {}
  void onLocal(processes::ProcessStateBase& s, const Action& a) const override {
    if (a.kind == ioa::ActionKind::EnvDecide) {
      dynamic_cast<LatchState&>(s).emitted = true;
    }
  }
};

// Decides the constant 7, which nobody proposed: validity breaks.
class DecideConstantProcess final : public processes::ProcessBase {
 public:
  using ProcessBase::ProcessBase;
  std::string name() const override {
    return "P" + std::to_string(endpoint()) + "<constant>";
  }
  std::unique_ptr<ioa::AutomatonState> initialState() const override {
    return std::make_unique<LatchState>();
  }

 protected:
  Action chooseAction(const processes::ProcessStateBase& s) const override {
    const auto& st = dynamic_cast<const LatchState&>(s);
    if (!st.input.isNil() && !st.emitted) {
      return Action::envDecide(endpoint(), sym("decide", 7));
    }
    return Action::procDummy(endpoint());
  }
  void onRespond(processes::ProcessStateBase&, int,
                 const Value&) const override {}
  void onLocal(processes::ProcessStateBase& s, const Action& a) const override {
    if (a.kind == ioa::ActionKind::EnvDecide) {
      dynamic_cast<LatchState&>(s).emitted = true;
    }
  }
};

// Never decides at all.
class SilentProcess final : public processes::ProcessBase {
 public:
  using ProcessBase::ProcessBase;
  std::string name() const override {
    return "P" + std::to_string(endpoint()) + "<silent>";
  }
  std::unique_ptr<ioa::AutomatonState> initialState() const override {
    return std::make_unique<LatchState>();
  }

 protected:
  Action chooseAction(const processes::ProcessStateBase&) const override {
    return Action::procDummy(endpoint());
  }
  void onRespond(processes::ProcessStateBase&, int,
                 const Value&) const override {}
  void onLocal(processes::ProcessStateBase&, const Action&) const override {}
};

template <typename P>
std::unique_ptr<ioa::System> makeSystem(int n) {
  auto sys = std::make_unique<ioa::System>();
  std::vector<int> all;
  for (int i = 0; i < n; ++i) {
    all.push_back(i);
    sys->addProcess(std::make_shared<P>(i));
  }
  // A scratch register so the system has at least one service (the
  // theorems' setting); the processes ignore it.
  auto reg = std::make_shared<services::CanonicalRegister>(200, all);
  sys->addService(reg, reg->meta());
  return sys;
}

TEST(AdversaryPaths, AgreementViolationCaughtBySafetyScan) {
  auto sys = makeSystem<DecideOwnInputProcess>(2);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::SafetyViolation)
      << report.summary();
  EXPECT_NE(report.narrative.find("agreement"), std::string::npos);
  EXPECT_TRUE(report.witnessIsFailureFree());
  EXPECT_FALSE(report.witness.empty());
}

TEST(AdversaryPaths, AgreementWitnessReplays) {
  auto sys = makeSystem<DecideOwnInputProcess>(2);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  ASSERT_EQ(report.verdict, AdversaryReport::Verdict::SafetyViolation);
  // Replaying the witness reaches a state with two different decisions.
  ioa::SystemState s = sys->initialState();
  for (const Action& a : report.witness.actions()) sys->applyInPlace(s, a);
  const auto& p0 = processes::ProcessBase::stateOf(s.part(0));
  const auto& p1 = processes::ProcessBase::stateOf(s.part(1));
  ASSERT_FALSE(p0.decision.isNil());
  ASSERT_FALSE(p1.decision.isNil());
  EXPECT_NE(p0.decision, p1.decision);
}

TEST(AdversaryPaths, ValidityViolationCaughtBySafetyScan) {
  auto sys = makeSystem<DecideConstantProcess>(2);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::SafetyViolation)
      << report.summary();
  EXPECT_NE(report.narrative.find("validity"), std::string::npos);
}

TEST(AdversaryPaths, NullValentInitializationCertified) {
  auto sys = makeSystem<SilentProcess>(2);
  AdversaryConfig cfg;
  cfg.claimedFailures = 1;
  auto report = analyzeConsensusCandidate(*sys, cfg);
  EXPECT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation)
      << report.summary();
  EXPECT_NE(report.narrative.find("Null-valent"), std::string::npos);
  EXPECT_TRUE(report.witnessIsFailureFree());
}

TEST(AdversaryPaths, SilentCandidateInitializationsAllNull) {
  auto sys = makeSystem<SilentProcess>(3);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto biv = findBivalentInitialization(g, va);
  for (const auto& init : biv.initializations) {
    EXPECT_EQ(init.valence, Valence::Null);
  }
  EXPECT_FALSE(biv.bivalent.has_value());
}

}  // namespace
}  // namespace boosting::analysis
