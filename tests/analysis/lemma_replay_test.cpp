// Executable Lemmas 6 and 7: task sequences that avoid the exempted
// process/service fire IDENTICAL actions from similar configurations --
// the replay correspondence that transplants the deciding extension in the
// proofs -- and similarity is preserved along the way.
#include "analysis/lemma_replay.h"

#include <gtest/gtest.h>

#include "analysis/adversary.h"
#include "analysis/bivalence.h"
#include "analysis/similarity.h"
#include "processes/relay_consensus.h"
#include "services/canonical_general.h"

namespace boosting::analysis {
namespace {

using processes::buildRelayConsensusSystem;
using processes::RelaySystemSpec;
using util::sym;
using util::Value;

std::unique_ptr<ioa::System> relay(int n, int f) {
  RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = false;
  return buildRelayConsensusSystem(spec);
}

// Two initializations differing only in P_j's input are j-similar.
std::pair<ioa::SystemState, ioa::SystemState> jSimilarPair(
    const ioa::System& sys, int j) {
  ioa::SystemState a = sys.initialState();
  ioa::SystemState b = sys.initialState();
  for (int i = 0; i < sys.processCount(); ++i) {
    sys.injectInit(a, i, Value(i == j ? 0 : 1));
    sys.injectInit(b, i, Value(1));
  }
  return {std::move(a), std::move(b)};
}

TEST(LemmaSixReplay, AvoidedRunsCorrespondAndDecideTheSame) {
  auto sys = relay(3, 2);
  const int j = 1;
  auto [a, b] = jSimilarPair(*sys, j);
  ASSERT_TRUE(jSimilar(*sys, a, b, j));

  AvoidSpec avoid;
  avoid.endpoint = j;
  auto run = runSynchronized(*sys, a, b, avoid, 2000, /*stopOnDecide=*/false);
  EXPECT_TRUE(run.corresponded) << "diverged at step " << run.divergedAt;
  // Both runs decide, identically, for every non-exempt process.
  auto decA = run.execA.decisions();
  auto decB = run.execB.decisions();
  ASSERT_EQ(decA.size(), 2u);  // P0 and P2 decide; P1 is exempted
  EXPECT_EQ(decA, decB);
  EXPECT_EQ(decA.count(j), 0u);
}

TEST(LemmaSixReplay, SimilarityIsPreserved) {
  auto sys = relay(3, 2);
  const int j = 2;
  auto [a, b] = jSimilarPair(*sys, j);
  AvoidSpec avoid;
  avoid.endpoint = j;
  auto run = runSynchronized(*sys, a, b, avoid, 500, false);
  ASSERT_TRUE(run.corresponded);
  EXPECT_TRUE(jSimilar(*sys, run.finalA, run.finalB, j));
}

TEST(LemmaSixReplay, WithoutAvoidanceTheRunsDiverge) {
  // Sanity of the divergence detector: if P_j is allowed to run, its
  // invocation payloads differ and the correspondence breaks.
  auto sys = relay(3, 2);
  const int j = 0;
  auto [a, b] = jSimilarPair(*sys, j);
  auto run = runSynchronized(*sys, a, b, AvoidSpec{}, 500, false);
  EXPECT_FALSE(run.corresponded);
}

TEST(LemmaSevenReplay, ServiceAvoidedRunsCorrespond) {
  auto sys = relay(2, 0);
  // k-similar pair: mutate only the consensus object's value in b.
  ioa::SystemState a = canonicalInitialization(*sys, 1);
  ioa::SystemState b = canonicalInitialization(*sys, 1);
  auto& svc = services::CanonicalGeneralService::stateOf(
      b.part(sys->slotForService(100)));
  svc.val = sym("chosen", 0);
  ASSERT_TRUE(kSimilar(*sys, a, b, 100));

  AvoidSpec avoid;
  avoid.serviceId = 100;
  auto run = runSynchronized(*sys, a, b, avoid, 500, false);
  EXPECT_TRUE(run.corresponded) << "diverged at step " << run.divergedAt;
  // With the only consensus object silenced, nobody can decide -- in
  // EITHER run (the operational content of Lemma 7's gamma).
  EXPECT_TRUE(run.execA.decisions().empty());
  EXPECT_TRUE(run.execB.decisions().empty());
  EXPECT_TRUE(kSimilar(*sys, run.finalA, run.finalB, 100));
}

TEST(LemmaReplay, HookEndpointsReplayPerClassification) {
  // From a real hook: run the avoidance schedule prescribed by the
  // classification from both hook endpoints -- the correspondence must
  // hold (this is the step the proofs of Lemmas 6/7 rely on).
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto biv = findBivalentInitialization(g, va);
  auto outcome = findHook(g, va, biv.bivalent->node);
  ASSERT_TRUE(outcome.hook);
  auto cls = classifyHook(g, *outcome.hook);
  ASSERT_NE(cls.kind, HookClassification::Kind::Unclassified);

  AvoidSpec avoid;
  if (cls.kind == HookClassification::Kind::ProcessSimilar) {
    avoid.endpoint = cls.index;
  } else {
    avoid.serviceId = cls.index;
  }
  const ioa::SystemState& s0 = g.state(outcome.hook->alpha0);
  const ioa::SystemState& s1 = g.state(outcome.hook->alpha1);
  auto run = runSynchronized(*sys, s0, s1, avoid, 2000, false);
  EXPECT_TRUE(run.corresponded) << "diverged at step " << run.divergedAt;
  // Opposite valences + correspondence => neither side may decide along
  // the avoided schedule (a decide would transplant to the other side and
  // contradict its valence).
  EXPECT_TRUE(run.execA.decisions().empty());
  EXPECT_TRUE(run.execB.decisions().empty());
}

TEST(LemmaReplay, AvoidSpecExcludesTheRightTasks) {
  AvoidSpec byEndpoint;
  byEndpoint.endpoint = 1;
  EXPECT_TRUE(byEndpoint.excludes(ioa::TaskId::process(1)));
  EXPECT_TRUE(byEndpoint.excludes(ioa::TaskId::servicePerform(100, 1)));
  EXPECT_TRUE(byEndpoint.excludes(ioa::TaskId::serviceOutput(200, 1)));
  EXPECT_FALSE(byEndpoint.excludes(ioa::TaskId::process(0)));
  EXPECT_FALSE(byEndpoint.excludes(ioa::TaskId::serviceCompute(100, 1)));

  AvoidSpec byService;
  byService.serviceId = 100;
  EXPECT_TRUE(byService.excludes(ioa::TaskId::servicePerform(100, 0)));
  EXPECT_TRUE(byService.excludes(ioa::TaskId::serviceOutput(100, 2)));
  EXPECT_TRUE(byService.excludes(ioa::TaskId::serviceCompute(100, 0)));
  EXPECT_FALSE(byService.excludes(ioa::TaskId::process(100)));
  EXPECT_FALSE(byService.excludes(ioa::TaskId::servicePerform(200, 0)));
}

}  // namespace
}  // namespace boosting::analysis
