// Lemma 5 / Fig. 3: the hook search finds, from a bivalent initialization,
// a vertex alpha and tasks e, e' with e(alpha) 0-valent and e(e'(alpha))
// 1-valent (up to label swap) -- the exact Fig. 2 pattern.
#include "analysis/hook.h"

#include <gtest/gtest.h>

#include "analysis/bivalence.h"
#include "processes/relay_consensus.h"
#include "processes/tob_consensus.h"

namespace boosting::analysis {
namespace {

using processes::buildRelayConsensusSystem;
using processes::RelaySystemSpec;

std::unique_ptr<ioa::System> relay(int n, int f) {
  RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = false;
  return buildRelayConsensusSystem(spec);
}

struct HookFixture {
  std::unique_ptr<ioa::System> sys;
  std::unique_ptr<StateGraph> g;
  std::unique_ptr<ValenceAnalyzer> va;
  HookSearchOutcome outcome;

  explicit HookFixture(std::unique_ptr<ioa::System> system)
      : sys(std::move(system)) {
    g = std::make_unique<StateGraph>(*sys);
    va = std::make_unique<ValenceAnalyzer>(*g);
    auto biv = findBivalentInitialization(*g, *va);
    EXPECT_TRUE(biv.bivalent.has_value());
    outcome = findHook(*g, *va, biv.bivalent->node);
  }
};

TEST(Hook, FoundForTwoProcessRelay) {
  HookFixture fx(relay(2, 0));
  ASSERT_TRUE(fx.outcome.hook.has_value());
  EXPECT_FALSE(fx.outcome.fairCycle);
}

TEST(Hook, StructureMatchesFigTwo) {
  HookFixture fx(relay(2, 0));
  ASSERT_TRUE(fx.outcome.hook.has_value());
  const Hook& h = *fx.outcome.hook;
  // alpha is bivalent; the two e-extensions have opposite valences.
  EXPECT_EQ(fx.va->valence(h.alpha), Valence::Bivalent);
  EXPECT_EQ(fx.va->valence(h.alpha0), h.alpha0Valence);
  EXPECT_EQ(fx.va->valence(h.alpha1), h.alpha1Valence);
  EXPECT_NE(h.alpha0Valence, h.alpha1Valence);
  // Structural equations of Fig. 2.
  auto e0 = fx.g->successorVia(h.alpha, h.e);
  ASSERT_TRUE(e0);
  EXPECT_EQ(e0->to, h.alpha0);
  auto ep = fx.g->successorVia(h.alpha, h.ePrime);
  ASSERT_TRUE(ep);
  EXPECT_EQ(ep->to, h.alphaPrime);
  auto e1 = fx.g->successorVia(h.alphaPrime, h.e);
  ASSERT_TRUE(e1);
  EXPECT_EQ(e1->to, h.alpha1);
}

TEST(Hook, TasksDiffer) {
  // Claim 1 of Lemma 8: e != e' for any genuine hook.
  HookFixture fx(relay(2, 0));
  ASSERT_TRUE(fx.outcome.hook.has_value());
  EXPECT_NE(fx.outcome.hook->e, fx.outcome.hook->ePrime);
}

TEST(Hook, AlphaPrimeRemainBivalentOrCommitting) {
  // e'(alpha) extends a bivalent alpha; since e(e'(alpha)) is univalent in
  // one direction and alpha0 in the other, alpha' itself must still allow
  // both decisions or be univalent toward alpha1's side.
  HookFixture fx(relay(2, 0));
  ASSERT_TRUE(fx.outcome.hook.has_value());
  const Hook& h = *fx.outcome.hook;
  const Valence vp = fx.va->valence(h.alphaPrime);
  EXPECT_TRUE(vp == Valence::Bivalent || vp == h.alpha1Valence);
}

TEST(Hook, FoundForThreeProcessRelay) {
  HookFixture fx(relay(3, 0));
  ASSERT_TRUE(fx.outcome.hook.has_value());
}

TEST(Hook, FoundForOneResilientObject) {
  HookFixture fx(relay(3, 1));
  ASSERT_TRUE(fx.outcome.hook.has_value());
}

TEST(Hook, FoundForBridgeCandidate) {
  processes::BridgeSystemSpec spec;
  HookFixture fx(processes::buildBridgeConsensusSystem(spec));
  ASSERT_TRUE(fx.outcome.hook.has_value());
}

TEST(Hook, FoundForTOBCandidate) {
  processes::TOBConsensusSpec spec;
  spec.processCount = 2;
  spec.serviceResilience = 0;
  HookFixture fx(processes::buildTOBConsensusSystem(spec));
  ASSERT_TRUE(fx.outcome.hook.has_value());
}

TEST(Hook, CommittingTaskTouchesTheSharedObject) {
  // For the relay candidate the only way to commit a decision is the
  // consensus object's perform step, so e (or the hook context) must
  // involve service 100.
  HookFixture fx(relay(2, 0));
  ASSERT_TRUE(fx.outcome.hook.has_value());
  const Hook& h = *fx.outcome.hook;
  const bool eOnService = h.e.owner != ioa::TaskOwner::Process &&
                          h.e.component == 100;
  EXPECT_TRUE(eOnService) << "e = " << h.e.str();
}

TEST(Hook, ThrowsOnNonBivalentStart) {
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId zero = g.intern(canonicalInitialization(*sys, 0));
  va.explore(zero);
  EXPECT_THROW(findHook(g, va, zero), std::logic_error);
}

}  // namespace
}  // namespace boosting::analysis
