// DOT export of G(C): structure, valence colouring, hook highlighting.
#include "analysis/dot_export.h"

#include <gtest/gtest.h>

#include "analysis/bivalence.h"
#include "processes/relay_consensus.h"

namespace boosting::analysis {
namespace {

using processes::buildRelayConsensusSystem;
using processes::RelaySystemSpec;

std::unique_ptr<ioa::System> relay() {
  RelaySystemSpec spec;
  spec.processCount = 2;
  spec.objectResilience = 0;
  spec.addScratchRegister = false;
  return buildRelayConsensusSystem(spec);
}

TEST(DotExport, ProducesWellFormedDigraph) {
  auto sys = relay();
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  std::string dot = exportDot(g, va, root);
  EXPECT_EQ(dot.rfind("digraph GC {", 0), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(DotExport, ColoursReflectValence) {
  auto sys = relay();
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  std::string dot = exportDot(g, va, root);
  EXPECT_NE(dot.find("khaki"), std::string::npos);      // bivalent nodes
  EXPECT_NE(dot.find("lightblue"), std::string::npos);  // 0-valent nodes
  EXPECT_NE(dot.find("salmon"), std::string::npos);     // 1-valent nodes
}

TEST(DotExport, NodeBudgetRespected) {
  auto sys = relay();
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  DotOptions opts;
  opts.maxNodes = 3;
  std::string dot = exportDot(g, va, root, opts);
  // Count node declaration lines (contain "fillcolor").
  std::size_t count = 0, pos = 0;
  while ((pos = dot.find("fillcolor", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_LE(count, 3u);
}

TEST(DotExport, HookEdgesHighlighted) {
  auto sys = relay();
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  auto biv = findBivalentInitialization(g, va);
  auto outcome = findHook(g, va, biv.bivalent->node);
  ASSERT_TRUE(outcome.hook);
  DotOptions opts;
  opts.maxNodes = 500;
  opts.highlightHook = outcome.hook;
  std::string dot = exportDot(g, va, biv.bivalent->node, opts);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(DotExport, StateLabelsOptIn) {
  auto sys = relay();
  StateGraph g(*sys);
  ValenceAnalyzer va(g);
  NodeId root = g.intern(canonicalInitialization(*sys, 1));
  DotOptions opts;
  opts.includeStateLabels = true;
  opts.maxNodes = 2;
  std::string dot = exportDot(g, va, root, opts);
  EXPECT_NE(dot.find("val="), std::string::npos);  // service state dump
}

}  // namespace
}  // namespace boosting::analysis
