// Differential fuzz for the dense epoch-stamped scratch containers
// (analysis/dense.h) against the std::unordered_set/map semantics they
// replace on the analysis hot paths. The properties that matter:
// insert()'s return value matches unordered_set::insert().second, reset()
// is a full clear (epoch bump, no element-wise work), values are recycled
// cleared across epochs, keys() preserves first-touch order, and the
// once-per-2^32-resets epoch wrap cannot resurrect stale members.
#include "analysis/dense.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace boosting::analysis {
namespace {

TEST(DenseIndexSet, MatchesUnorderedSetOracle) {
  std::mt19937_64 rng(0xB005713Bu);
  for (int round = 0; round < 8; ++round) {
    DenseIndexSet dense;
    std::unordered_set<std::size_t> oracle;
    for (int op = 0; op < 4000; ++op) {
      const std::size_t key = rng() % 512;
      switch (rng() % 4) {
        case 0:
        case 1: {
          const bool fresh = dense.insert(key);
          EXPECT_EQ(fresh, oracle.insert(key).second) << "key " << key;
          break;
        }
        case 2:
          EXPECT_EQ(dense.contains(key), oracle.count(key) != 0)
              << "key " << key;
          break;
        case 3:
          if (rng() % 16 == 0) {
            dense.reset();
            oracle.clear();
          }
          break;
      }
      ASSERT_EQ(dense.size(), oracle.size());
      ASSERT_EQ(dense.empty(), oracle.empty());
    }
  }
}

TEST(DenseIndexSet, ResetIsClearFree) {
  DenseIndexSet s(8);
  for (std::size_t k = 0; k < 100; k += 3) s.insert(k);
  EXPECT_EQ(s.size(), 34u);
  // Many reset cycles reuse the same storage; membership never leaks
  // across epochs.
  for (int cycle = 0; cycle < 1000; ++cycle) {
    s.reset();
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.contains(3 * static_cast<std::size_t>(cycle % 33)));
    EXPECT_TRUE(s.insert(cycle % 7));
    EXPECT_FALSE(s.insert(cycle % 7));
    EXPECT_TRUE(s.contains(cycle % 7));
    EXPECT_EQ(s.size(), 1u);
  }
}

TEST(DenseIndexSet, EpochWrapCannotResurrectStaleStamps) {
  DenseIndexSet s;
  s.insert(5);
  s.insert(9);
  s.forceEpochWrapForTest();
  // Entries stamped before the wrap are still members until the reset...
  EXPECT_TRUE(s.contains(5));
  s.reset();  // epoch wraps to 1; stamp array must have been zero-filled
  EXPECT_FALSE(s.contains(5));
  EXPECT_FALSE(s.contains(9));
  EXPECT_TRUE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_EQ(s.size(), 1u);
}

TEST(DenseIndexSet, GrowsToLargestKey) {
  DenseIndexSet s;  // no reserve: auto-grow path
  EXPECT_TRUE(s.insert(100000));
  EXPECT_TRUE(s.contains(100000));
  EXPECT_FALSE(s.contains(99999));
  EXPECT_TRUE(s.insert(3));
  EXPECT_EQ(s.size(), 2u);
}

TEST(DenseIndexMap, MatchesUnorderedMapOracle) {
  std::mt19937_64 rng(0x5EED5E75u);
  for (int round = 0; round < 8; ++round) {
    DenseIndexMap<int> dense;
    std::unordered_map<std::size_t, int> oracle;
    for (int op = 0; op < 4000; ++op) {
      const std::size_t key = rng() % 512;
      switch (rng() % 4) {
        case 0:
        case 1: {
          const int v = static_cast<int>(rng() % 1000);
          dense.at(key) += v;
          oracle[key] += v;
          break;
        }
        case 2: {
          const int* got = dense.find(key);
          auto it = oracle.find(key);
          ASSERT_EQ(got != nullptr, it != oracle.end()) << "key " << key;
          if (got) EXPECT_EQ(*got, it->second) << "key " << key;
          EXPECT_EQ(dense.contains(key), it != oracle.end());
          break;
        }
        case 3:
          if (rng() % 16 == 0) {
            dense.reset();
            oracle.clear();
          }
          break;
      }
      ASSERT_EQ(dense.size(), oracle.size());
    }
    // keys() covers exactly the oracle's key set.
    std::unordered_set<std::size_t> live(dense.keys().begin(),
                                         dense.keys().end());
    ASSERT_EQ(live.size(), dense.keys().size()) << "duplicate live key";
    for (const auto& [k, v] : oracle) EXPECT_TRUE(live.count(k));
  }
}

TEST(DenseIndexMap, KeysInFirstTouchOrder) {
  DenseIndexMap<int> m;
  m.at(7) = 1;
  m.at(2) = 2;
  m.at(7) = 3;  // re-touch must not duplicate
  m.at(0) = 4;
  EXPECT_EQ(m.keys(), (std::vector<std::size_t>{7, 2, 0}));
  m.reset();
  m.at(2) = 5;
  EXPECT_EQ(m.keys(), (std::vector<std::size_t>{2}));
}

TEST(DenseIndexMap, RecyclesContainerValuesCleared) {
  DenseIndexMap<std::vector<int>> m;
  m.at(4).assign({1, 2, 3});
  m.reset();
  EXPECT_FALSE(m.contains(4));
  EXPECT_EQ(m.find(4), nullptr);
  // First touch of the new epoch sees a cleared (not stale) vector.
  EXPECT_TRUE(m.at(4).empty());
  m.at(4).push_back(9);
  EXPECT_EQ(m.at(4).size(), 1u);
}

TEST(DenseIndexMap, EpochWrapCannotResurrectStaleValues) {
  DenseIndexMap<int> m;
  m.at(11) = 42;
  m.forceEpochWrapForTest();
  EXPECT_TRUE(m.contains(11));
  m.reset();
  EXPECT_FALSE(m.contains(11));
  EXPECT_EQ(m.find(11), nullptr);
  EXPECT_EQ(m.at(11), 0);  // recycled, cleared
  EXPECT_EQ(m.size(), 1u);
}

}  // namespace
}  // namespace boosting::analysis
