// Worker-abort hardening: when an expansion hook (standing in for any
// exception escaping a worker) throws mid-exploration, the engine must
// rethrow that exception, leave the StateGraph in a checked-consistent
// state, poison install(), and leave the graph fully reusable for a fresh
// exploration.
#include "analysis/parallel_explorer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "analysis/bivalence.h"
#include "processes/relay_consensus.h"

namespace boosting::analysis {
namespace {

std::unique_ptr<ioa::System> relay(int n, int f) {
  processes::RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = false;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildRelayConsensusSystem(spec);
}

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("expansion hook detonated") {}
};

ExplorationPolicy throwAfter(unsigned threads, std::size_t expansions,
                             unsigned shards = 0) {
  ExplorationPolicy policy;
  policy.threads = threads;
  policy.shards = shards;
  policy.expansionHook = [expansions](std::size_t count) {
    if (count > expansions) throw Boom();
  };
  return policy;
}

TEST(ExplorerAbort, WorkerThrowLeavesGraphConsistentAndPoisonsInstall) {
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  ParallelExplorer ex(g, throwAfter(2, 10));
  EXPECT_THROW(ex.expand({canonicalInitialization(*sys, 1)}), Boom);
  std::string why;
  EXPECT_TRUE(g.checkConsistent(&why)) << why;
  EXPECT_THROW(ex.install(0), std::logic_error);
  // Phase 1 never touches the graph, so nothing may have leaked into it.
  EXPECT_EQ(g.stats().statesDiscovered, g.size());
}

TEST(ExplorerAbort, ImmediateThrowAborts) {
  // Hook throws on the very first expansion: the root state itself.
  auto sys = relay(2, 0);
  StateGraph g(*sys);
  ParallelExplorer ex(g, throwAfter(2, 0));
  EXPECT_THROW(ex.expand({canonicalInitialization(*sys, 1)}), Boom);
  std::string why;
  EXPECT_TRUE(g.checkConsistent(&why)) << why;
  EXPECT_THROW(ex.install(0), std::logic_error);
}

TEST(ExplorerAbort, GraphReusableAfterParallelAbort) {
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  {
    ParallelExplorer ex(g, throwAfter(2, 25));
    EXPECT_THROW(ex.expand({g.state(root)}), Boom);
  }
  // A fresh exploration over the same graph must complete and agree with a
  // from-scratch serial exploration.
  ExplorationPolicy serial;
  const ExploreStats after = exploreReachable(g, root, serial);
  std::string why;
  ASSERT_TRUE(g.checkConsistent(&why)) << why;

  auto sys2 = relay(3, 1);
  StateGraph g2(*sys2);
  const NodeId root2 = g2.intern(canonicalInitialization(*sys2, 1));
  const ExploreStats fresh = exploreReachable(g2, root2, serial);
  EXPECT_EQ(after.statesDiscovered, fresh.statesDiscovered);
  EXPECT_EQ(after.edgesComputed, fresh.edgesComputed);
  EXPECT_EQ(g.size(), g2.size());
}

TEST(ExplorerAbort, SerialThrowLeavesGraphConsistent) {
  // threads = 1 takes the legacy BFS path; the same guarantees must hold
  // there (minus install(), which the serial path never uses).
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  EXPECT_THROW(exploreReachable(g, root, throwAfter(1, 30)), Boom);
  std::string why;
  EXPECT_TRUE(g.checkConsistent(&why)) << why;
  // Finish the job serially; the graph must still be exactly right.
  const ExploreStats done = exploreReachable(g, root, ExplorationPolicy{});
  EXPECT_GT(done.statesDiscovered, 0u);
  ASSERT_TRUE(g.checkConsistent(&why)) << why;
}

TEST(ExplorerAbort, MidBatchThrowDrainsAndPoisons) {
  // With many shards and few expansions between throws, workers die while
  // their per-shard batch buffers still hold un-flushed successors. The
  // abort path must drain-and-poison those batches: the inflight token
  // accounting may not wedge the join, the graph stays consistent, and
  // install() is poisoned.
  auto sys = relay(3, 1);
  for (const std::size_t detonateAfter : {1u, 3u, 7u, 20u, 60u}) {
    StateGraph g(*sys);
    ParallelExplorer ex(g, throwAfter(4, detonateAfter, /*shards=*/8));
    EXPECT_THROW(ex.expand({canonicalInitialization(*sys, 1)}), Boom)
        << "detonateAfter=" << detonateAfter;
    std::string why;
    EXPECT_TRUE(g.checkConsistent(&why))
        << "detonateAfter=" << detonateAfter << ": " << why;
    EXPECT_THROW(ex.install(0), std::logic_error)
        << "detonateAfter=" << detonateAfter;
    EXPECT_EQ(g.stats().statesDiscovered, g.size());
  }
}

TEST(ExplorerAbort, GraphReusableAfterMidBatchAbortWithShards) {
  // After a mid-batch abort the same graph must support a fresh, complete
  // sharded exploration that agrees with a from-scratch serial one.
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  {
    ParallelExplorer ex(g, throwAfter(4, 5, /*shards=*/8));
    EXPECT_THROW(ex.expand({g.state(root)}), Boom);
  }
  ExplorationPolicy sharded;
  sharded.threads = 2;
  sharded.shards = 4;
  const ExploreStats after = exploreReachable(g, root, sharded);
  std::string why;
  ASSERT_TRUE(g.checkConsistent(&why)) << why;

  auto sys2 = relay(3, 1);
  StateGraph g2(*sys2);
  const NodeId root2 = g2.intern(canonicalInitialization(*sys2, 1));
  const ExploreStats fresh = exploreReachable(g2, root2, ExplorationPolicy{});
  EXPECT_EQ(after.statesDiscovered, fresh.statesDiscovered);
  EXPECT_EQ(after.edgesComputed, fresh.edgesComputed);
  EXPECT_EQ(g.size(), g2.size());
}

TEST(ExplorerAbort, PipelinedThrowLeavesGraphConsistentMidInstall) {
  // Pipelined mode runs install() concurrently with phase 1: a worker
  // throwing mid-level must stop the install pump at a node boundary, so
  // the graph stays consistent, the exception surfaces from
  // expandAndInstallFirst, and install() stays poisoned afterwards.
  auto sys = relay(3, 1);
  for (const std::size_t detonateAfter : {1u, 5u, 20u, 60u}) {
    StateGraph g(*sys);
    ExplorationPolicy policy = throwAfter(4, detonateAfter, /*shards=*/8);
    policy.pipeline = PipelineMode::On;
    ParallelExplorer ex(g, policy);
    EXPECT_THROW(ex.expandAndInstallFirst({canonicalInitialization(*sys, 1)}),
                 Boom)
        << "detonateAfter=" << detonateAfter;
    std::string why;
    EXPECT_TRUE(g.checkConsistent(&why))
        << "detonateAfter=" << detonateAfter << ": " << why;
    EXPECT_THROW(ex.install(0), std::logic_error)
        << "detonateAfter=" << detonateAfter;
    // Whatever prefix the pump installed must be fully accounted for.
    EXPECT_EQ(g.stats().statesDiscovered, g.size());
  }
}

TEST(ExplorerAbort, GraphReusableAfterPipelinedAbort) {
  // After a pipelined abort the same graph must support a fresh, complete
  // pipelined exploration that agrees with a from-scratch serial one.
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  {
    ExplorationPolicy policy = throwAfter(4, 8, /*shards=*/8);
    policy.pipeline = PipelineMode::On;
    ParallelExplorer ex(g, policy);
    EXPECT_THROW(ex.expandAndInstallFirst({g.state(root)}), Boom);
  }
  ExplorationPolicy pipelined;
  pipelined.threads = 2;
  pipelined.shards = 4;
  pipelined.pipeline = PipelineMode::On;
  const ExploreStats after = exploreReachable(g, root, pipelined);
  std::string why;
  ASSERT_TRUE(g.checkConsistent(&why)) << why;

  auto sys2 = relay(3, 1);
  StateGraph g2(*sys2);
  const NodeId root2 = g2.intern(canonicalInitialization(*sys2, 1));
  const ExploreStats fresh = exploreReachable(g2, root2, ExplorationPolicy{});
  EXPECT_EQ(after.statesDiscovered, fresh.statesDiscovered);
  EXPECT_EQ(after.edgesComputed, fresh.edgesComputed);
  EXPECT_EQ(g.size(), g2.size());
}

TEST(ExplorerAbort, HookSeesMonotonicCountAcrossWorkers) {
  // The hook receives the global running expansion count; with a
  // non-throwing hook the exploration must complete and the count must
  // have reached the number of states expanded.
  auto sys = relay(3, 1);
  StateGraph g(*sys);
  const NodeId root = g.intern(canonicalInitialization(*sys, 1));
  std::atomic<std::size_t> peak{0};
  ExplorationPolicy policy;
  policy.threads = 2;
  policy.expansionHook = [&peak](std::size_t count) {
    std::size_t prev = peak.load();
    while (prev < count && !peak.compare_exchange_weak(prev, count)) {
    }
  };
  const ExploreStats stats = exploreReachable(g, root, policy);
  EXPECT_EQ(peak.load(), stats.statesDiscovered);
}

}  // namespace
}  // namespace boosting::analysis
