// Differential battery for ample-set partial-order reduction: the
// adversary pipeline must reach the SAME verdict, the same initialization
// valences and a genuinely replayable witness across the full 2x2 matrix
// {symmetry off/on} x {por off/on}, on every n=3/4 fixture -- including
// the candidates where one reduction applies and the other must REFUSE
// (bridge declines symmetry but accepts POR; TOB declines both). The
// soundness argument (stubborn-set preservation of stable-predicate
// reachability plus the BFS cycle proviso, DESIGN.md "Partial-order
// reduction") is executable here.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/adversary.h"
#include "processes/flooding_consensus.h"
#include "processes/relay_consensus.h"
#include "processes/rotating_consensus.h"
#include "processes/tob_consensus.h"

namespace boosting::analysis {
namespace {

std::unique_ptr<ioa::System> relayFixture(int n, int f) {
  processes::RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildRelayConsensusSystem(spec);
}

std::unique_ptr<ioa::System> floodingFixture(int n, int f) {
  processes::FloodingConsensusSpec spec;
  spec.processCount = n;
  spec.channelResilience = f;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildFloodingConsensusSystem(spec);
}

std::unique_ptr<ioa::System> bridgeFixture(int n) {
  processes::BridgeSystemSpec spec;
  spec.processCount = n;
  spec.policy = services::DummyPolicy::PreferDummy;
  return processes::buildBridgeConsensusSystem(spec);
}

AdversaryReport runWith(const ioa::System& sys, int claim, SymmetryMode sym,
                        PorMode por, bool exemptFailureAware = false,
                        int threads = 1) {
  AdversaryConfig cfg;
  cfg.claimedFailures = claim;
  cfg.exemptFailureAware = exemptFailureAware;
  cfg.symmetry = sym;
  cfg.por = por;
  cfg.exploration.threads = threads;
  return analyzeConsensusCandidate(sys, cfg);
}

// Valence is reachability of the stable decide predicates, which stubborn
// sets preserve, so the per-initialization outcomes must match exactly
// across every cell of the matrix (node ids live in different graphs and
// are not compared).
void expectSameProofShape(const AdversaryReport& base,
                          const AdversaryReport& reduced,
                          const char* label) {
  EXPECT_EQ(base.verdict, reduced.verdict)
      << label << "\nbase: " << base.summary()
      << "\nreduced: " << reduced.summary();
  ASSERT_EQ(base.initializations.size(), reduced.initializations.size())
      << label;
  for (std::size_t i = 0; i < base.initializations.size(); ++i) {
    EXPECT_EQ(base.initializations[i].onesPrefix,
              reduced.initializations[i].onesPrefix)
        << label;
    EXPECT_EQ(base.initializations[i].valence,
              reduced.initializations[i].valence)
        << label << ": initialization "
        << base.initializations[i].onesPrefix;
  }
  EXPECT_EQ(base.bivalentInit.has_value(), reduced.bivalentInit.has_value())
      << label;
  if (base.bivalentInit && reduced.bivalentInit) {
    EXPECT_EQ(base.bivalentInit->onesPrefix, reduced.bivalentInit->onesPrefix)
        << label;
  }
  EXPECT_EQ(base.hook.has_value(), reduced.hook.has_value()) << label;
  EXPECT_EQ(base.fairCycle, reduced.fairCycle) << label;
}

// Every reduced edge is a genuine transition, so the witness must replay
// as a real execution of the UNreduced system from its initial state --
// identity lifting, no commuted-step re-insertion needed (DESIGN.md).
void expectWitnessIsConcrete(const ioa::System& sys,
                             const AdversaryReport& report) {
  ASSERT_EQ(report.verdict, AdversaryReport::Verdict::TerminationViolation);
  ASSERT_FALSE(report.witness.empty());
  ioa::SystemState s = sys.initialState();
  for (const ioa::Action& a : report.witness.actions()) {
    ASSERT_NO_THROW(sys.applyInPlace(s, a)) << a.str();
  }
  EXPECT_EQ(report.witness.failedEndpoints(), report.witnessFailures);
  for (const ioa::Action& a : report.witness.actions()) {
    if (a.kind == ioa::ActionKind::EnvDecide) {
      EXPECT_TRUE(report.witnessFailures.count(a.endpoint))
          << "correct process decided in the reduced witness: " << a.str();
    }
  }
}

// The full four-cell matrix on one fixture: full exploration is the
// ground truth; each reduction alone and the stack must agree with it.
void runMatrix(const ioa::System& sys, int claim,
               bool expectPor, bool expectSym) {
  const auto full = runWith(sys, claim, SymmetryMode::Off, PorMode::Off);
  const auto symOnly = runWith(sys, claim, SymmetryMode::On, PorMode::Off);
  const auto porOnly = runWith(sys, claim, SymmetryMode::Off, PorMode::On);
  const auto stacked = runWith(sys, claim, SymmetryMode::On, PorMode::On);

  EXPECT_FALSE(full.porReduced);
  EXPECT_EQ(porOnly.porReduced, expectPor) << porOnly.porNote;
  EXPECT_EQ(symOnly.symmetryReduced, expectSym) << symOnly.symmetryNote;
  EXPECT_EQ(stacked.porReduced, expectPor) << stacked.porNote;
  EXPECT_EQ(stacked.symmetryReduced, expectSym) << stacked.symmetryNote;

  expectSameProofShape(full, symOnly, "sym-only vs full");
  expectSameProofShape(full, porOnly, "por-only vs full");
  expectSameProofShape(full, stacked, "sym+por vs full");

  if (expectPor) {
    EXPECT_LE(porOnly.statesExplored, full.statesExplored);
    EXPECT_GT(porOnly.porTasksSkipped, 0u);
  } else {
    // A declined reduction must reproduce the legacy graph bit-for-bit.
    EXPECT_EQ(porOnly.statesExplored, full.statesExplored);
    EXPECT_FALSE(porOnly.porNote.empty());
  }
  if (expectPor && expectSym) {
    EXPECT_LE(stacked.statesExplored, symOnly.statesExplored);
  }

  for (const AdversaryReport* r : {&full, &symOnly, &porOnly, &stacked}) {
    if (r->verdict == AdversaryReport::Verdict::TerminationViolation) {
      expectWitnessIsConcrete(sys, *r);
    }
  }
}

TEST(PorEquivalence, RelayN3FZeroMatrix) {
  auto sys = relayFixture(3, 0);
  runMatrix(*sys, 1, /*expectPor=*/true, /*expectSym=*/true);
}

TEST(PorEquivalence, RelayN3FOneMatrix) {
  // The genuinely-boosting claim (f = 1 -> 2): the heart of Theorem 2.
  auto sys = relayFixture(3, 1);
  runMatrix(*sys, 2, /*expectPor=*/true, /*expectSym=*/true);
}

TEST(PorEquivalence, RelayN4FOneMatrix) {
  auto sys = relayFixture(4, 1);
  runMatrix(*sys, 2, /*expectPor=*/true, /*expectSym=*/true);
}

TEST(PorEquivalence, FloodingN3Matrix) {
  // Channels respond to the RECIPIENT, not the invoker, so the policy
  // must keep the conservative whole-response footprint; the reduction
  // still engages and must stay sound.
  auto sys = floodingFixture(3, 0);
  runMatrix(*sys, 1, /*expectPor=*/true, /*expectSym=*/true);
}

TEST(PorEquivalence, BridgeN3PorWithoutSymmetry) {
  // The asymmetric bridge topology declines the symmetry quotient but
  // its components all declare task structures: POR alone must engage
  // and agree with the full graph.
  auto sys = bridgeFixture(3);
  runMatrix(*sys, 1, /*expectPor=*/true, /*expectSym=*/false);
}

TEST(PorEquivalence, TOBN3DeclinesWithoutTaskStructure) {
  processes::TOBConsensusSpec spec;
  spec.processCount = 3;
  spec.serviceResilience = 0;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildTOBConsensusSystem(spec);
  const auto off = runWith(*sys, 1, SymmetryMode::Off, PorMode::Off);
  const auto on = runWith(*sys, 1, SymmetryMode::Off, PorMode::On);
  // No declared task structure: On must fall back to full expansion, say
  // why, and reproduce the legacy run bit-for-bit.
  EXPECT_FALSE(on.porReduced);
  EXPECT_FALSE(on.porNote.empty());
  expectSameProofShape(off, on, "por-on (declined) vs full");
  EXPECT_EQ(off.statesExplored, on.statesExplored);
}

TEST(PorEquivalence, SingleFDN3Theorem10ModeDeclines) {
  processes::SingleFDConsensusSpec spec;
  spec.processCount = 3;
  spec.fdResilience = 0;
  spec.policy = services::DummyPolicy::PreferDummy;
  auto sys = processes::buildSingleFDRotatingConsensusSystem(spec);
  const auto off = runWith(*sys, 1, SymmetryMode::Off, PorMode::Off,
                           /*exemptFailureAware=*/true);
  const auto on = runWith(*sys, 1, SymmetryMode::Off, PorMode::On,
                          /*exemptFailureAware=*/true);
  EXPECT_FALSE(on.porReduced);
  expectSameProofShape(off, on, "por-on (declined) vs full");
  EXPECT_EQ(off.statesExplored, on.statesExplored);
}

TEST(PorEquivalence, ReductionIsDeterministicAcrossThreadCounts) {
  // The PR-1 guarantee survives the stacked reduction: serial and
  // parallel exploration of the reduced quotient agree on every proof
  // artifact, on the state count, and on the witness byte-for-byte.
  auto sys = relayFixture(3, 1);
  const auto serial = runWith(*sys, 2, SymmetryMode::On, PorMode::On,
                              false, /*threads=*/1);
  const auto parallel = runWith(*sys, 2, SymmetryMode::On, PorMode::On,
                                false, /*threads=*/4);
  expectSameProofShape(serial, parallel, "parallel vs serial");
  EXPECT_EQ(serial.statesExplored, parallel.statesExplored);
  ASSERT_EQ(serial.witness.size(), parallel.witness.size());
  for (std::size_t i = 0; i < serial.witness.size(); ++i) {
    EXPECT_EQ(serial.witness.actions()[i].str(),
              parallel.witness.actions()[i].str())
        << "witness diverges at action " << i;
  }
}

TEST(PorEquivalence, PorOnlyDeterministicAcrossThreadCounts) {
  auto sys = floodingFixture(3, 0);
  const auto serial = runWith(*sys, 1, SymmetryMode::Off, PorMode::On,
                              false, /*threads=*/1);
  const auto parallel = runWith(*sys, 1, SymmetryMode::Off, PorMode::On,
                                false, /*threads=*/4);
  expectSameProofShape(serial, parallel, "parallel vs serial");
  EXPECT_EQ(serial.statesExplored, parallel.statesExplored);
  ASSERT_EQ(serial.witness.size(), parallel.witness.size());
  for (std::size_t i = 0; i < serial.witness.size(); ++i) {
    EXPECT_EQ(serial.witness.actions()[i].str(),
              parallel.witness.actions()[i].str())
        << "witness diverges at action " << i;
  }
}

TEST(PorEquivalence, AutoEnablesForDeclaredTaskStructureOnly) {
  {
    auto sys = relayFixture(3, 0);
    const auto r = runWith(*sys, 1, SymmetryMode::Off, PorMode::Auto);
    EXPECT_TRUE(r.porReduced) << r.porNote;
  }
  {
    processes::TOBConsensusSpec spec;
    spec.processCount = 3;
    spec.serviceResilience = 0;
    spec.policy = services::DummyPolicy::PreferDummy;
    auto sys = processes::buildTOBConsensusSystem(spec);
    const auto r = runWith(*sys, 1, SymmetryMode::Off, PorMode::Auto);
    EXPECT_FALSE(r.porReduced);
  }
}

TEST(PorEquivalence, OffIsTheLibraryDefault) {
  // Library callers who never touch cfg.por must keep the legacy engine
  // bit-for-bit (CLI opts into Auto explicitly).
  AdversaryConfig cfg;
  EXPECT_EQ(cfg.por, PorMode::Off);
  auto sys = relayFixture(3, 0);
  StateGraph g(*sys);
  EXPECT_FALSE(g.porActive());
}

}  // namespace
}  // namespace boosting::analysis
