// The point-to-point channel fabric as a failure-oblivious service:
// routing, per-pair FIFO, no creation/duplication, resilience semantics.
#include <gtest/gtest.h>

#include "services/canonical_oblivious.h"
#include "types/channel_type.h"

namespace boosting::services {
namespace {

using ioa::Action;
using ioa::TaskId;
using util::sym;
using util::Value;

CanonicalObliviousService makeFabric(int f = 2) {
  return CanonicalObliviousService(types::pointToPointChannelType(), 7,
                                   {0, 1, 2}, f);
}

TEST(Channel, SendDeliversToDestinationOnly) {
  auto ch = makeFabric();
  auto s = ch.initialState();
  ch.apply(*s, Action::invoke(0, 7, sym("send", 2, Value("hi"))));
  ch.apply(*s, *ch.enabledAction(*s, TaskId::servicePerform(7, 0)));
  EXPECT_FALSE(ch.enabledAction(*s, TaskId::serviceOutput(7, 0)));
  EXPECT_FALSE(ch.enabledAction(*s, TaskId::serviceOutput(7, 1)));
  auto r = ch.enabledAction(*s, TaskId::serviceOutput(7, 2));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->payload, sym("msg", 0, Value("hi")));
}

TEST(Channel, SenderIdentityIsAttached) {
  auto ch = makeFabric();
  auto s = ch.initialState();
  ch.apply(*s, Action::invoke(1, 7, sym("send", 0, Value(42))));
  ch.apply(*s, *ch.enabledAction(*s, TaskId::servicePerform(7, 1)));
  auto r = ch.enabledAction(*s, TaskId::serviceOutput(7, 0));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->payload.at(1), Value(1));  // from endpoint 1
}

TEST(Channel, PerPairFifo) {
  auto ch = makeFabric();
  auto s = ch.initialState();
  ch.apply(*s, Action::invoke(0, 7, sym("send", 1, Value("a"))));
  ch.apply(*s, Action::invoke(0, 7, sym("send", 1, Value("b"))));
  ch.apply(*s, *ch.enabledAction(*s, TaskId::servicePerform(7, 0)));
  ch.apply(*s, *ch.enabledAction(*s, TaskId::servicePerform(7, 0)));
  auto r1 = ch.enabledAction(*s, TaskId::serviceOutput(7, 1));
  ASSERT_TRUE(r1);
  EXPECT_EQ(r1->payload.at(2), Value("a"));
  ch.apply(*s, *r1);
  auto r2 = ch.enabledAction(*s, TaskId::serviceOutput(7, 1));
  ASSERT_TRUE(r2);
  EXPECT_EQ(r2->payload.at(2), Value("b"));
}

TEST(Channel, SelfSendAllowed) {
  auto ch = makeFabric();
  auto s = ch.initialState();
  ch.apply(*s, Action::invoke(0, 7, sym("send", 0, Value("loop"))));
  ch.apply(*s, *ch.enabledAction(*s, TaskId::servicePerform(7, 0)));
  auto r = ch.enabledAction(*s, TaskId::serviceOutput(7, 0));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->payload, sym("msg", 0, Value("loop")));
}

TEST(Channel, RejectsUnknownDestination) {
  auto ch = makeFabric();
  auto s = ch.initialState();
  ch.apply(*s, Action::invoke(0, 7, sym("send", 9, Value("x"))));
  EXPECT_THROW(
      ch.apply(*s, *ch.enabledAction(*s, TaskId::servicePerform(7, 0))),
      std::logic_error);
}

TEST(Channel, RejectsMalformedInvocation) {
  auto ch = makeFabric();
  auto s = ch.initialState();
  ch.apply(*s, Action::invoke(0, 7, sym("transmit", 1)));
  EXPECT_THROW(
      ch.apply(*s, *ch.enabledAction(*s, TaskId::servicePerform(7, 0))),
      std::logic_error);
}

TEST(Channel, HasNoGlobalTasks) {
  auto ch = makeFabric();
  for (const auto& t : ch.tasks()) {
    EXPECT_NE(t.owner, ioa::TaskOwner::ServiceCompute);
  }
}

TEST(Channel, SilencedBeyondResilienceUnderAdversary) {
  CanonicalObliviousService::Options opts;
  opts.policy = DummyPolicy::PreferDummy;
  CanonicalObliviousService ch(types::pointToPointChannelType(), 7, {0, 1, 2},
                               0, opts);
  auto s = ch.initialState();
  ch.apply(*s, Action::invoke(0, 7, sym("send", 1, Value("m"))));
  ch.apply(*s, Action::fail(2));  // one failure > f = 0
  auto p = ch.enabledAction(*s, TaskId::servicePerform(7, 0));
  ASSERT_TRUE(p);
  EXPECT_EQ(p->kind, ioa::ActionKind::DummyPerform);
}

TEST(Channel, NoSpontaneousMessages) {
  auto ch = makeFabric();
  auto s = ch.initialState();
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(ch.enabledAction(*s, TaskId::serviceOutput(7, i)));
    EXPECT_FALSE(ch.enabledAction(*s, TaskId::servicePerform(7, i)));
  }
}

}  // namespace
}  // namespace boosting::services
