// Failure detectors as general services (Section 6.2): the perfect
// detector P reports exactly the failed endpoints; the eventually perfect
// detector <>P may report arbitrarily before stabilizing and exactly after.
#include <gtest/gtest.h>

#include "services/canonical_general.h"
#include "types/fd_types.h"

namespace boosting::services {
namespace {

using ioa::Action;
using ioa::TaskId;
using util::sym;
using util::Value;

CanonicalGeneralService makeP(std::vector<int> ends = {0, 1, 2},
                              int f = 2, bool coalesce = false) {
  CanonicalGeneralService::Options opts;
  opts.coalesceResponses = coalesce;
  return CanonicalGeneralService(types::perfectFailureDetectorType(), 11,
                                 std::move(ends), f, opts);
}

TEST(PerfectFD, OneGlobalTaskPerEndpoint) {
  auto fd = makeP();
  int computes = 0;
  for (const auto& t : fd.tasks()) {
    if (t.owner == ioa::TaskOwner::ServiceCompute) ++computes;
  }
  EXPECT_EQ(computes, 3);  // the -1 sentinel resolves to |J|
  EXPECT_TRUE(fd.meta().failureAware);
}

TEST(PerfectFD, ReportsEmptySetInitially) {
  auto fd = makeP();
  auto s = fd.initialState();
  fd.apply(*s, *fd.enabledAction(*s, TaskId::serviceCompute(11, 0)));
  auto r = fd.enabledAction(*s, TaskId::serviceOutput(11, 0));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->payload, sym("suspect", Value::emptySet()));
}

TEST(PerfectFD, ReportsExactlyTheFailedSet) {
  auto fd = makeP();
  auto s = fd.initialState();
  fd.apply(*s, Action::fail(1));
  // Task g targets endpoints[g]; endpoint 2 is served by task 2.
  fd.apply(*s, *fd.enabledAction(*s, TaskId::serviceCompute(11, 2)));
  auto r = fd.enabledAction(*s, TaskId::serviceOutput(11, 2));
  ASSERT_TRUE(r);
  EXPECT_EQ(types::suspectSet(r->payload), Value::set({Value(1)}));
}

TEST(PerfectFD, AccuracyNeverSuspectsAlive) {
  auto fd = makeP();
  auto s = fd.initialState();
  fd.apply(*s, Action::fail(0));
  fd.apply(*s, Action::fail(2));
  fd.apply(*s, *fd.enabledAction(*s, TaskId::serviceCompute(11, 1)));
  auto r = fd.enabledAction(*s, TaskId::serviceOutput(11, 1));
  ASSERT_TRUE(r);
  Value suspects = types::suspectSet(r->payload);
  EXPECT_FALSE(suspects.setContains(Value(1)));  // 1 is alive
  EXPECT_TRUE(suspects.setContains(Value(0)));
  EXPECT_TRUE(suspects.setContains(Value(2)));
}

TEST(PerfectFD, HasNoInvocations) {
  auto fd = makeP();
  auto s = fd.initialState();
  fd.apply(*s, Action::invoke(0, 11, sym("query")));
  EXPECT_THROW(
      fd.apply(*s, *fd.enabledAction(*s, TaskId::servicePerform(11, 0))),
      std::logic_error);
}

TEST(PerfectFD, CoalescingBoundsBufferGrowth) {
  auto fd = makeP({0, 1}, 1, /*coalesce=*/true);
  auto s = fd.initialState();
  for (int k = 0; k < 10; ++k) {
    fd.apply(*s, *fd.enabledAction(*s, TaskId::serviceCompute(11, 0)));
  }
  const auto& st = CanonicalGeneralService::stateOf(*s);
  EXPECT_EQ(st.respBuf.at(0).size(), 1u);  // identical reports coalesced
}

TEST(PerfectFD, WithoutCoalescingBufferGrows) {
  auto fd = makeP({0, 1}, 1, /*coalesce=*/false);
  auto s = fd.initialState();
  for (int k = 0; k < 10; ++k) {
    fd.apply(*s, *fd.enabledAction(*s, TaskId::serviceCompute(11, 0)));
  }
  EXPECT_EQ(CanonicalGeneralService::stateOf(*s).respBuf.at(0).size(), 10u);
}

TEST(PerfectFD, SilencedWhenResilienceExceeded) {
  CanonicalGeneralService::Options opts;
  opts.policy = DummyPolicy::PreferDummy;
  CanonicalGeneralService fd(types::perfectFailureDetectorType(), 11, {0, 1},
                             1, opts);
  auto s = fd.initialState();
  fd.apply(*s, Action::fail(0));
  fd.apply(*s, Action::fail(1));  // both endpoints: |failed| > f = 1
  auto c = fd.enabledAction(*s, TaskId::serviceCompute(11, 0));
  ASSERT_TRUE(c);
  EXPECT_EQ(c->kind, ioa::ActionKind::DummyCompute);
}

CanonicalGeneralService makeEvP(int stabilization) {
  CanonicalGeneralService::Options opts;
  opts.coalesceResponses = true;
  return CanonicalGeneralService(
      types::eventuallyPerfectFailureDetectorType(stabilization), 12,
      {0, 1, 2}, 2, opts);
}

TEST(EventuallyPerfectFD, HasModeTask) {
  auto fd = makeEvP(3);
  int computes = 0;
  for (const auto& t : fd.tasks()) {
    if (t.owner == ioa::TaskOwner::ServiceCompute) ++computes;
  }
  EXPECT_EQ(computes, 4);  // |J| suspicion tasks + 1 mode task
}

TEST(EventuallyPerfectFD, ImperfectPhaseSuspectsEveryoneElse) {
  auto fd = makeEvP(5);
  auto s = fd.initialState();
  fd.apply(*s, *fd.enabledAction(*s, TaskId::serviceCompute(12, 0)));
  auto r = fd.enabledAction(*s, TaskId::serviceOutput(12, 0));
  ASSERT_TRUE(r);
  // Worst-case wrong suspicions while imperfect: everyone but yourself.
  EXPECT_EQ(types::suspectSet(r->payload), Value::set({Value(1), Value(2)}));
}

TEST(EventuallyPerfectFD, ModeTaskCountsDownThenStabilizes) {
  auto fd = makeEvP(2);
  auto s = fd.initialState();
  const TaskId mode = TaskId::serviceCompute(12, 3);
  fd.apply(*s, *fd.enabledAction(*s, mode));
  fd.apply(*s, *fd.enabledAction(*s, mode));
  // Now perfect: suspicions are exactly the failed set.
  fd.apply(*s, Action::fail(2));
  fd.apply(*s, *fd.enabledAction(*s, TaskId::serviceCompute(12, 0)));
  auto r = fd.enabledAction(*s, TaskId::serviceOutput(12, 0));
  ASSERT_TRUE(r);
  EXPECT_EQ(types::suspectSet(r->payload), Value::set({Value(2)}));
}

TEST(EventuallyPerfectFD, ZeroStabilizationIsPerfectImmediately) {
  auto fd = makeEvP(0);
  auto s = fd.initialState();
  fd.apply(*s, *fd.enabledAction(*s, TaskId::serviceCompute(12, 1)));
  auto r = fd.enabledAction(*s, TaskId::serviceOutput(12, 1));
  ASSERT_TRUE(r);
  EXPECT_EQ(types::suspectSet(r->payload), Value::emptySet());
}

TEST(EventuallyPerfectFD, RejectsNegativeStabilization) {
  EXPECT_THROW(types::eventuallyPerfectFailureDetectorType(-1),
               std::logic_error);
}

TEST(FDTypes, SuspectSetRejectsOtherPayloads) {
  EXPECT_THROW(types::suspectSet(sym("decide", 1)), std::logic_error);
}

}  // namespace
}  // namespace boosting::services
