// Canonical reliable registers (Section 2.1.3): wait-free read/write
// atomic objects, the second kind of building block the theorems allow.
#include "services/register.h"

#include <gtest/gtest.h>

#include "types/builtin_types.h"

namespace boosting::services {
namespace {

using ioa::Action;
using ioa::TaskId;
using util::sym;
using util::Value;

TEST(Register, IsWaitFreeByConstruction) {
  CanonicalRegister reg(3, {0, 1, 2});
  EXPECT_EQ(reg.resilience(), 2);
  EXPECT_TRUE(reg.isWaitFree());
  EXPECT_TRUE(reg.meta().isRegister);
  EXPECT_FALSE(reg.meta().failureAware);
}

TEST(Register, InitialValueDefaultsToNil) {
  CanonicalRegister reg(3, {0});
  auto s = reg.initialState();
  EXPECT_TRUE(CanonicalGeneralService::stateOf(*s).val.isNil());
}

TEST(Register, CustomInitialValue) {
  CanonicalRegister reg(3, {0}, Value(41));
  auto s = reg.initialState();
  reg.apply(*s, Action::invoke(0, 3, sym("read")));
  reg.apply(*s, *reg.enabledAction(*s, TaskId::servicePerform(3, 0)));
  auto out = reg.enabledAction(*s, TaskId::serviceOutput(3, 0));
  ASSERT_TRUE(out);
  EXPECT_EQ(out->payload, Value(41));
}

TEST(Register, WriteThenReadAcrossEndpoints) {
  CanonicalRegister reg(3, {0, 1});
  auto s = reg.initialState();
  reg.apply(*s, Action::invoke(0, 3, sym("write", 9)));
  reg.apply(*s, *reg.enabledAction(*s, TaskId::servicePerform(3, 0)));
  reg.apply(*s, Action::invoke(1, 3, sym("read")));
  reg.apply(*s, *reg.enabledAction(*s, TaskId::servicePerform(3, 1)));
  auto out = reg.enabledAction(*s, TaskId::serviceOutput(3, 1));
  ASSERT_TRUE(out);
  EXPECT_EQ(out->payload, Value(9));
}

TEST(Register, LastWriteWins) {
  CanonicalRegister reg(3, {0, 1});
  auto s = reg.initialState();
  reg.apply(*s, Action::invoke(0, 3, sym("write", 1)));
  reg.apply(*s, Action::invoke(1, 3, sym("write", 2)));
  reg.apply(*s, *reg.enabledAction(*s, TaskId::servicePerform(3, 0)));
  reg.apply(*s, *reg.enabledAction(*s, TaskId::servicePerform(3, 1)));
  EXPECT_EQ(CanonicalGeneralService::stateOf(*s).val, Value(2));
}

TEST(Register, KeepsServingWhileSomeEndpointAlive) {
  // Reliable: with |J| = 3 and two failures, endpoint 0 is still served
  // even under the adversarial dummy policy.
  CanonicalAtomicObject::Options opts;
  opts.policy = DummyPolicy::PreferDummy;
  opts.isRegister = true;
  CanonicalAtomicObject reg(types::registerType(), 3, {0, 1, 2}, 2, opts);
  auto s = reg.initialState();
  reg.apply(*s, Action::fail(1));
  reg.apply(*s, Action::fail(2));
  reg.apply(*s, Action::invoke(0, 3, sym("read")));
  auto p = reg.enabledAction(*s, TaskId::servicePerform(3, 0));
  ASSERT_TRUE(p);
  EXPECT_EQ(p->kind, ioa::ActionKind::Perform);
}

}  // namespace
}  // namespace boosting::services
