// The TOB conformance checker, validated positively against real service
// traces and negatively against hand-corrupted ones.
#include <gtest/gtest.h>

#include "processes/tob_consensus.h"
#include "sim/properties.h"
#include "sim/runner.h"

namespace boosting::sim {
namespace {

using util::sym;
using util::Value;

ioa::Execution handMade() {
  ioa::Execution e;
  e.append(ioa::Action::invoke(0, 8, sym("bcast", Value("a"))));
  e.append(ioa::Action::invoke(1, 8, sym("bcast", Value("b"))));
  e.append(ioa::Action::respond(0, 8, sym("rcv", Value("a"), 0)));
  e.append(ioa::Action::respond(1, 8, sym("rcv", Value("a"), 0)));
  e.append(ioa::Action::respond(0, 8, sym("rcv", Value("b"), 1)));
  e.append(ioa::Action::respond(1, 8, sym("rcv", Value("b"), 1)));
  return e;
}

TEST(TOBConformance, AcceptsWellFormedTrace) {
  EXPECT_TRUE(checkTOBConformance(handMade(), 8));
}

TEST(TOBConformance, AcceptsEmptyTrace) {
  EXPECT_TRUE(checkTOBConformance(ioa::Execution{}, 8));
}

TEST(TOBConformance, AcceptsPrefixDeliveries) {
  // Endpoint 1 lags behind: its sequence is a proper prefix.
  ioa::Execution e;
  e.append(ioa::Action::invoke(0, 8, sym("bcast", Value("a"))));
  e.append(ioa::Action::invoke(0, 8, sym("bcast", Value("b"))));
  e.append(ioa::Action::respond(0, 8, sym("rcv", Value("a"), 0)));
  e.append(ioa::Action::respond(0, 8, sym("rcv", Value("b"), 0)));
  e.append(ioa::Action::respond(1, 8, sym("rcv", Value("a"), 0)));
  EXPECT_TRUE(checkTOBConformance(e, 8));
}

TEST(TOBConformance, RejectsDivergentOrders) {
  ioa::Execution e;
  e.append(ioa::Action::invoke(0, 8, sym("bcast", Value("a"))));
  e.append(ioa::Action::invoke(1, 8, sym("bcast", Value("b"))));
  e.append(ioa::Action::respond(0, 8, sym("rcv", Value("a"), 0)));
  e.append(ioa::Action::respond(0, 8, sym("rcv", Value("b"), 1)));
  e.append(ioa::Action::respond(1, 8, sym("rcv", Value("b"), 1)));  // swapped
  e.append(ioa::Action::respond(1, 8, sym("rcv", Value("a"), 0)));
  auto v = checkTOBConformance(e, 8);
  EXPECT_FALSE(v);
  EXPECT_NE(v.detail.find("total order"), std::string::npos);
}

TEST(TOBConformance, RejectsCreatedMessages) {
  ioa::Execution e;
  e.append(ioa::Action::respond(0, 8, sym("rcv", Value("ghost"), 1)));
  auto v = checkTOBConformance(e, 8);
  EXPECT_FALSE(v);
  EXPECT_NE(v.detail.find("creation"), std::string::npos);
}

TEST(TOBConformance, RejectsSenderFifoViolations) {
  ioa::Execution e;
  e.append(ioa::Action::invoke(0, 8, sym("bcast", Value("first"))));
  e.append(ioa::Action::invoke(0, 8, sym("bcast", Value("second"))));
  e.append(ioa::Action::respond(1, 8, sym("rcv", Value("second"), 0)));
  e.append(ioa::Action::respond(1, 8, sym("rcv", Value("first"), 0)));
  auto v = checkTOBConformance(e, 8);
  EXPECT_FALSE(v);
  EXPECT_NE(v.detail.find("FIFO"), std::string::npos);
}

TEST(TOBConformance, RejectsDuplicatedDelivery) {
  ioa::Execution e;
  e.append(ioa::Action::invoke(0, 8, sym("bcast", Value("a"))));
  e.append(ioa::Action::respond(1, 8, sym("rcv", Value("a"), 0)));
  e.append(ioa::Action::respond(1, 8, sym("rcv", Value("a"), 0)));  // dup
  auto v = checkTOBConformance(e, 8);
  EXPECT_FALSE(v);  // second occurrence has no matching bcast instance
}

TEST(TOBConformance, IgnoresOtherServices) {
  ioa::Execution e;
  e.append(ioa::Action::respond(0, 9, sym("rcv", Value("ghost"), 1)));
  EXPECT_TRUE(checkTOBConformance(e, 8));
}

class TOBConformanceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TOBConformanceSweep, GeneratedTracesConform) {
  processes::TOBConsensusSpec spec;
  spec.processCount = 4;
  spec.serviceResilience = 3;
  auto sys = processes::buildTOBConsensusSystem(spec);
  RunConfig cfg;
  cfg.scheduler = RunConfig::Sched::Random;
  cfg.seed = GetParam();
  cfg.inits = binaryInits(4, static_cast<unsigned>(GetParam() % 16));
  if (GetParam() % 2 == 0) {
    cfg.failures = {{GetParam() % 11, static_cast<int>(GetParam() % 4)}};
  }
  auto r = run(*sys, cfg);
  auto verdict = checkTOBConformance(r.exec, spec.tobServiceId);
  EXPECT_TRUE(verdict) << verdict.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TOBConformanceSweep,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace boosting::sim
