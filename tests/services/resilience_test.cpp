// Resilience semantics (Section 2.1.3): dummy actions become enabled when
// an endpoint fails or when more than f endpoints fail; the DummyPolicy
// resolves the resulting choice deterministically; compute tasks follow the
// Fig. 4 rule (> f failures or all endpoints failed).
#include <gtest/gtest.h>

#include "services/canonical_atomic.h"
#include "services/canonical_oblivious.h"
#include "types/builtin_types.h"
#include "types/tob_type.h"

namespace boosting::services {
namespace {

using ioa::Action;
using ioa::TaskId;
using util::sym;

CanonicalAtomicObject make(int f, DummyPolicy policy) {
  CanonicalAtomicObject::Options opts;
  opts.policy = policy;
  return CanonicalAtomicObject(types::binaryConsensusType(), 9, {0, 1, 2}, f,
                               opts);
}

TEST(Resilience, NoDummiesWithoutFailures) {
  auto obj = make(0, DummyPolicy::PreferDummy);
  auto s = obj.initialState();
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(obj.enabledAction(*s, TaskId::servicePerform(9, i)));
    EXPECT_FALSE(obj.enabledAction(*s, TaskId::serviceOutput(9, i)));
  }
}

TEST(Resilience, FailedEndpointEnablesItsDummies) {
  auto obj = make(2, DummyPolicy::PreferDummy);
  auto s = obj.initialState();
  obj.apply(*s, Action::fail(1));
  // Endpoint 1's tasks now have dummy actions enabled...
  auto d = obj.enabledAction(*s, TaskId::servicePerform(9, 1));
  ASSERT_TRUE(d);
  EXPECT_EQ(d->kind, ioa::ActionKind::DummyPerform);
  auto o = obj.enabledAction(*s, TaskId::serviceOutput(9, 1));
  ASSERT_TRUE(o);
  EXPECT_EQ(o->kind, ioa::ActionKind::DummyOutput);
  // ...but other endpoints are unaffected (1 <= f = 2).
  EXPECT_FALSE(obj.enabledAction(*s, TaskId::servicePerform(9, 0)));
}

TEST(Resilience, ExceedingFSilencesEveryEndpointUnderPreferDummy) {
  auto obj = make(1, DummyPolicy::PreferDummy);
  auto s = obj.initialState();
  obj.apply(*s, Action::invoke(0, 9, sym("init", 0)));
  obj.apply(*s, Action::fail(1));
  obj.apply(*s, Action::fail(2));  // |failed| = 2 > f = 1
  // Even the healthy endpoint 0 now gets only dummy steps.
  auto d = obj.enabledAction(*s, TaskId::servicePerform(9, 0));
  ASSERT_TRUE(d);
  EXPECT_EQ(d->kind, ioa::ActionKind::DummyPerform);
}

TEST(Resilience, WithinFServiceKeepsServingHealthyEndpoints) {
  auto obj = make(1, DummyPolicy::PreferDummy);
  auto s = obj.initialState();
  obj.apply(*s, Action::invoke(0, 9, sym("init", 0)));
  obj.apply(*s, Action::fail(1));  // |failed| = 1 <= f
  auto p = obj.enabledAction(*s, TaskId::servicePerform(9, 0));
  ASSERT_TRUE(p);
  EXPECT_EQ(p->kind, ioa::ActionKind::Perform);
}

TEST(Resilience, PreferRealServesDespiteExceededResilience) {
  // The paper's canonical object MAY stop; it is not forced to. PreferReal
  // models the benign resolution.
  auto obj = make(0, DummyPolicy::PreferReal);
  auto s = obj.initialState();
  obj.apply(*s, Action::invoke(0, 9, sym("init", 1)));
  obj.apply(*s, Action::fail(1));
  auto p = obj.enabledAction(*s, TaskId::servicePerform(9, 0));
  ASSERT_TRUE(p);
  EXPECT_EQ(p->kind, ioa::ActionKind::Perform);
}

TEST(Resilience, PreferRealFallsBackToDummyWhenNothingToDo) {
  auto obj = make(0, DummyPolicy::PreferReal);
  auto s = obj.initialState();
  obj.apply(*s, Action::fail(0));
  // Failed endpoint, empty buffers: only the dummy is available, and the
  // task must remain applicable (fairness bookkeeping).
  auto d = obj.enabledAction(*s, TaskId::servicePerform(9, 0));
  ASSERT_TRUE(d);
  EXPECT_EQ(d->kind, ioa::ActionKind::DummyPerform);
}

TEST(Resilience, DummyActionsAreNoOps) {
  auto obj = make(0, DummyPolicy::PreferDummy);
  auto s = obj.initialState();
  obj.apply(*s, Action::invoke(0, 9, sym("init", 1)));
  obj.apply(*s, Action::fail(1));
  auto before = s->clone();
  obj.apply(*s, Action::dummyPerform(0, 9));
  obj.apply(*s, Action::dummyOutput(1, 9));
  EXPECT_TRUE(s->equals(*before));
}

TEST(Resilience, FailOfNonEndpointIgnored) {
  CanonicalAtomicObject obj(types::binaryConsensusType(), 9, {0, 1}, 0);
  auto s = obj.initialState();
  obj.apply(*s, Action::fail(7));  // routed away by System normally
  EXPECT_TRUE(CanonicalGeneralService::stateOf(*s).failed.empty());
}

TEST(Resilience, ComputeDummyRequiresExceededFOrAllFailed) {
  CanonicalObliviousService::Options opts;
  opts.policy = DummyPolicy::PreferDummy;
  CanonicalObliviousService tob(types::totallyOrderedBroadcastType(), 5,
                                {0, 1, 2}, 1, opts);
  auto s = tob.initialState();
  // No failures: the (total) compute action is the real one.
  auto c = tob.enabledAction(*s, TaskId::serviceCompute(5, 0));
  ASSERT_TRUE(c);
  EXPECT_EQ(c->kind, ioa::ActionKind::Compute);
  // One failure (= f): still real.
  tob.apply(*s, Action::fail(0));
  c = tob.enabledAction(*s, TaskId::serviceCompute(5, 0));
  ASSERT_TRUE(c);
  EXPECT_EQ(c->kind, ioa::ActionKind::Compute);
  // Two failures (> f): dummy preferred.
  tob.apply(*s, Action::fail(1));
  c = tob.enabledAction(*s, TaskId::serviceCompute(5, 0));
  ASSERT_TRUE(c);
  EXPECT_EQ(c->kind, ioa::ActionKind::DummyCompute);
}

TEST(Resilience, AllEndpointsFailedEnablesComputeDummyEvenWithHighF) {
  CanonicalObliviousService::Options opts;
  opts.policy = DummyPolicy::PreferDummy;
  // f = 3 >= |J| = 2: the "> f" clause never fires, but the all-failed
  // clause does (Fig. 4's dummy_compute precondition).
  CanonicalObliviousService tob(types::totallyOrderedBroadcastType(), 5,
                                {0, 1}, 3, opts);
  auto s = tob.initialState();
  tob.apply(*s, Action::fail(0));
  tob.apply(*s, Action::fail(1));
  auto c = tob.enabledAction(*s, TaskId::serviceCompute(5, 0));
  ASSERT_TRUE(c);
  EXPECT_EQ(c->kind, ioa::ActionKind::DummyCompute);
}

TEST(Resilience, WaitFreeObjectOnlySilencedWhenAllEndpointsFail) {
  // Wait-free = (|J|-1)-resilient: with |J| = 3, two failures are within
  // the bound for healthy endpoints.
  auto obj = make(2, DummyPolicy::PreferDummy);
  auto s = obj.initialState();
  obj.apply(*s, Action::invoke(0, 9, sym("init", 0)));
  obj.apply(*s, Action::fail(1));
  obj.apply(*s, Action::fail(2));
  auto p = obj.enabledAction(*s, TaskId::servicePerform(9, 0));
  ASSERT_TRUE(p);
  EXPECT_EQ(p->kind, ioa::ActionKind::Perform);
}

}  // namespace
}  // namespace boosting::services
