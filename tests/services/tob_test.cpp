// Totally ordered broadcast (Section 5.2, Figs. 5-7): one bcast triggers a
// delivery to EVERY endpoint (hence not expressible as an atomic object),
// deliveries are identically ordered at all endpoints, no message is lost
// or duplicated by the service.
#include <gtest/gtest.h>

#include "services/canonical_oblivious.h"
#include "types/tob_type.h"

namespace boosting::services {
namespace {

using ioa::Action;
using ioa::TaskId;
using util::sym;
using util::Value;

CanonicalObliviousService makeTOB(int f = 2) {
  return CanonicalObliviousService(types::totallyOrderedBroadcastType(), 8,
                                   {0, 1, 2}, f);
}

// Drive the service by hand: enqueue bcasts, fire perform/compute tasks,
// drain one endpoint's responses.
std::vector<Value> drainResponses(CanonicalObliviousService& tob,
                                  ioa::AutomatonState& s, int endpoint) {
  std::vector<Value> out;
  while (auto r = tob.enabledAction(s, TaskId::serviceOutput(8, endpoint))) {
    out.push_back(r->payload);
    tob.apply(s, *r);
  }
  return out;
}

TEST(TOB, HasExactlyOneGlobalTask) {
  auto tob = makeTOB();
  int computes = 0;
  for (const auto& t : tob.tasks()) {
    if (t.owner == ioa::TaskOwner::ServiceCompute) ++computes;
  }
  EXPECT_EQ(computes, 1);
}

TEST(TOB, BcastPerformMovesMessageIntoMsgs) {
  auto tob = makeTOB();
  auto s = tob.initialState();
  tob.apply(*s, Action::invoke(1, 8, sym("bcast", Value("hello"))));
  tob.apply(*s, *tob.enabledAction(*s, TaskId::servicePerform(8, 1)));
  const auto& st = CanonicalGeneralService::stateOf(*s);
  ASSERT_EQ(st.val.size(), 1u);
  EXPECT_EQ(st.val.at(0).at(0), Value("hello"));
  EXPECT_EQ(st.val.at(0).at(1), Value(1));  // sender recorded
  // No responses yet: delivery is the compute step's job.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(tob.enabledAction(*s, TaskId::serviceOutput(8, i)));
  }
}

TEST(TOB, ComputeDeliversHeadToAllEndpoints) {
  auto tob = makeTOB();
  auto s = tob.initialState();
  tob.apply(*s, Action::invoke(0, 8, sym("bcast", Value("m"))));
  tob.apply(*s, *tob.enabledAction(*s, TaskId::servicePerform(8, 0)));
  tob.apply(*s, *tob.enabledAction(*s, TaskId::serviceCompute(8, 0)));
  for (int i = 0; i < 3; ++i) {
    auto r = tob.enabledAction(*s, TaskId::serviceOutput(8, i));
    ASSERT_TRUE(r) << "endpoint " << i;
    EXPECT_EQ(r->payload, sym("rcv", Value("m"), 0));
  }
  // msgs drained.
  EXPECT_EQ(CanonicalGeneralService::stateOf(*s).val.size(), 0u);
}

TEST(TOB, ComputeOnEmptyMsgsIsIdentity) {
  auto tob = makeTOB();
  auto s = tob.initialState();
  auto before = s->clone();
  tob.apply(*s, *tob.enabledAction(*s, TaskId::serviceCompute(8, 0)));
  EXPECT_TRUE(s->equals(*before));
}

TEST(TOB, TotalOrderIsPerformOrderNotInvocationOrder) {
  auto tob = makeTOB();
  auto s = tob.initialState();
  tob.apply(*s, Action::invoke(0, 8, sym("bcast", Value("a"))));
  tob.apply(*s, Action::invoke(2, 8, sym("bcast", Value("b"))));
  // Perform endpoint 2 first: "b" is ordered before "a".
  tob.apply(*s, *tob.enabledAction(*s, TaskId::servicePerform(8, 2)));
  tob.apply(*s, *tob.enabledAction(*s, TaskId::servicePerform(8, 0)));
  tob.apply(*s, *tob.enabledAction(*s, TaskId::serviceCompute(8, 0)));
  tob.apply(*s, *tob.enabledAction(*s, TaskId::serviceCompute(8, 0)));
  for (int i = 0; i < 3; ++i) {
    auto seq = drainResponses(tob, *s, i);
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0], sym("rcv", Value("b"), 2));
    EXPECT_EQ(seq[1], sym("rcv", Value("a"), 0));
  }
}

TEST(TOB, AllEndpointsSeeSameSequenceUnderInterleaving) {
  auto tob = makeTOB();
  auto s = tob.initialState();
  // Three senders, interleaved performs and computes.
  for (int i = 0; i < 3; ++i) {
    tob.apply(*s, Action::invoke(i, 8, sym("bcast", Value(i * 10))));
  }
  tob.apply(*s, *tob.enabledAction(*s, TaskId::servicePerform(8, 1)));
  tob.apply(*s, *tob.enabledAction(*s, TaskId::serviceCompute(8, 0)));
  tob.apply(*s, *tob.enabledAction(*s, TaskId::servicePerform(8, 0)));
  tob.apply(*s, *tob.enabledAction(*s, TaskId::servicePerform(8, 2)));
  tob.apply(*s, *tob.enabledAction(*s, TaskId::serviceCompute(8, 0)));
  tob.apply(*s, *tob.enabledAction(*s, TaskId::serviceCompute(8, 0)));
  std::vector<Value> ref = drainResponses(tob, *s, 0);
  ASSERT_EQ(ref.size(), 3u);
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(drainResponses(tob, *s, i), ref) << "endpoint " << i;
  }
}

TEST(TOB, NoDuplicationNoLoss) {
  auto tob = makeTOB();
  auto s = tob.initialState();
  const int kMessages = 5;
  for (int m = 0; m < kMessages; ++m) {
    tob.apply(*s, Action::invoke(0, 8, sym("bcast", Value(m))));
    tob.apply(*s, *tob.enabledAction(*s, TaskId::servicePerform(8, 0)));
  }
  for (int m = 0; m < kMessages; ++m) {
    tob.apply(*s, *tob.enabledAction(*s, TaskId::serviceCompute(8, 0)));
  }
  auto seq = drainResponses(tob, *s, 1);
  ASSERT_EQ(seq.size(), static_cast<std::size_t>(kMessages));
  for (int m = 0; m < kMessages; ++m) {
    EXPECT_EQ(seq[static_cast<std::size_t>(m)], sym("rcv", Value(m), 0));
  }
}

TEST(TOB, RejectsNonBcastInvocations) {
  auto tob = makeTOB();
  auto s = tob.initialState();
  tob.apply(*s, Action::invoke(0, 8, sym("write", 1)));
  EXPECT_THROW(
      tob.apply(*s, *tob.enabledAction(*s, TaskId::servicePerform(8, 0))),
      std::logic_error);
}

}  // namespace
}  // namespace boosting::services
