// Linearizability fuzzing: random pipelined workloads against canonical
// atomic objects of every built-in type, under random fair schedules and
// crash injection -- every generated history must be linearizable (clause
// 2 of the "implements" definition, checked with the full nondeterministic
// transition relation).
#include <gtest/gtest.h>

#include "processes/script_client.h"
#include "services/canonical_atomic.h"
#include "sim/linearizability.h"
#include "sim/runner.h"
#include "types/builtin_types.h"
#include "util/rng.h"

namespace boosting::sim {
namespace {

using processes::ScriptClientProcess;
using services::CanonicalAtomicObject;
using util::Value;

constexpr int kServiceId = 42;

struct FuzzCase {
  const char* typeName;
  std::uint64_t seed;
  int clients;
  int opsPerClient;
  int pipelineDepth;
  bool injectFailure;
};

types::SequentialType typeByName(const std::string& name) {
  if (name == "register") return types::registerType();
  if (name == "consensus") return types::binaryConsensusType();
  if (name == "kset2") return types::kSetConsensusType(2);
  if (name == "tas") return types::testAndSetType();
  if (name == "cas") return types::compareAndSwapType();
  if (name == "counter") return types::counterType();
  if (name == "faa") return types::fetchAddType();
  if (name == "queue") return types::queueType();
  if (name == "snapshot") return types::snapshotType(2);
  throw std::logic_error("unknown type " + name);
}

class LinearizabilityFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(LinearizabilityFuzz, GeneratedHistoriesLinearizable) {
  const FuzzCase& c = GetParam();
  const types::SequentialType type = typeByName(c.typeName);
  util::Rng rng(c.seed);

  auto sys = std::make_unique<ioa::System>();
  for (int i = 0; i < c.clients; ++i) {
    std::vector<Value> script;
    for (int k = 0; k < c.opsPerClient; ++k) {
      const auto& samples = type.sampleInvocations;
      script.push_back(samples[rng.nextBelow(samples.size())]);
    }
    sys->addProcess(std::make_shared<ScriptClientProcess>(
        i, kServiceId, std::move(script), c.pipelineDepth));
  }
  std::vector<int> all;
  for (int i = 0; i < c.clients; ++i) all.push_back(i);
  services::CanonicalAtomicObject::Options opts;
  opts.policy = services::DummyPolicy::PreferDummy;
  auto obj = std::make_shared<CanonicalAtomicObject>(
      type, kServiceId, all, c.clients - 1, opts);
  sys->addService(obj, obj->meta());

  RunConfig cfg;
  cfg.scheduler = RunConfig::Sched::Random;
  cfg.seed = c.seed * 31 + 7;
  cfg.stopWhenAllDecided = false;
  cfg.maxSteps = 4000;
  if (c.injectFailure) {
    cfg.failures = {{c.seed % 17 + 1, static_cast<int>(c.seed % c.clients)}};
  }
  auto r = run(*sys, cfg);

  auto ops = extractHistory(r.exec, kServiceId);
  ASSERT_FALSE(ops.empty());
  ASSERT_LE(ops.size(), 63u);
  auto lin = checkLinearizable(type, ops);
  EXPECT_FALSE(lin.exhausted);
  EXPECT_TRUE(lin.linearizable)
      << c.typeName << " seed=" << c.seed << " ops=" << ops.size();
}

std::vector<FuzzCase> fuzzCases() {
  std::vector<FuzzCase> cases;
  const char* names[] = {"register", "consensus", "kset2", "tas", "cas",
                         "counter",  "faa",       "queue", "snapshot"};
  for (const char* name : names) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      cases.push_back({name, seed, 3, 4, 1, seed % 2 == 1});
      cases.push_back({name, seed + 100, 2, 4, 3, false});  // pipelined
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTypes, LinearizabilityFuzz,
                         ::testing::ValuesIn(fuzzCases()));

TEST(ScriptClient, PipelinesUpToDepth) {
  auto sys = std::make_unique<ioa::System>();
  std::vector<Value> script = {util::sym("inc"), util::sym("inc"),
                               util::sym("inc"), util::sym("read")};
  sys->addProcess(
      std::make_shared<ScriptClientProcess>(0, kServiceId, script, 2));
  auto obj = std::make_shared<CanonicalAtomicObject>(
      types::counterType(), kServiceId, std::vector<int>{0}, 0);
  sys->addService(obj, obj->meta());

  // Two invokes may fire before any perform/respond.
  ioa::SystemState s = sys->initialState();
  auto a1 = sys->enabled(s, ioa::TaskId::process(0));
  ASSERT_TRUE(a1 && a1->kind == ioa::ActionKind::Invoke);
  sys->applyInPlace(s, *a1);
  auto a2 = sys->enabled(s, ioa::TaskId::process(0));
  ASSERT_TRUE(a2 && a2->kind == ioa::ActionKind::Invoke);
  sys->applyInPlace(s, *a2);
  // Third blocked by depth 2.
  auto a3 = sys->enabled(s, ioa::TaskId::process(0));
  ASSERT_TRUE(a3);
  EXPECT_EQ(a3->kind, ioa::ActionKind::ProcDummy);
}

TEST(ScriptClient, CompletesWholeScript) {
  auto sys = std::make_unique<ioa::System>();
  std::vector<Value> script(6, util::sym("inc"));
  sys->addProcess(
      std::make_shared<ScriptClientProcess>(0, kServiceId, script, 2));
  auto obj = std::make_shared<CanonicalAtomicObject>(
      types::counterType(), kServiceId, std::vector<int>{0}, 0);
  sys->addService(obj, obj->meta());
  RunConfig cfg;
  cfg.stopWhenAllDecided = false;
  cfg.maxSteps = 500;
  auto r = run(*sys, cfg);
  auto ops = extractHistory(r.exec, kServiceId);
  EXPECT_EQ(ops.size(), 6u);
  for (const auto& op : ops) EXPECT_TRUE(op.completed);
}

TEST(ScriptClient, RejectsBadDepth) {
  EXPECT_THROW(ScriptClientProcess(0, 1, {}, 0), std::logic_error);
}

}  // namespace
}  // namespace boosting::sim
