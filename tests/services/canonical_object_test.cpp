// Canonical atomic object semantics (Fig. 1): buffers, perform/output
// tasks, FIFO per endpoint, concurrent invocations, Appendix B (Theorem 11)
// for the canonical consensus object.
#include "services/canonical_atomic.h"

#include <gtest/gtest.h>

#include "types/builtin_types.h"

namespace boosting::services {
namespace {

using ioa::Action;
using ioa::TaskId;
using util::sym;
using util::Value;

CanonicalAtomicObject makeConsensus(int f, int n = 3) {
  std::vector<int> ends;
  for (int i = 0; i < n; ++i) ends.push_back(i);
  return CanonicalAtomicObject(types::binaryConsensusType(), 9, ends, f);
}

TEST(CanonicalObject, InitialStateEmptyBuffers) {
  auto obj = makeConsensus(1);
  auto s = obj.initialState();
  const auto& st = CanonicalGeneralService::stateOf(*s);
  EXPECT_TRUE(st.val.isNil());
  EXPECT_EQ(st.invBuf.size(), 3u);
  for (const auto& [i, q] : st.invBuf) {
    (void)i;
    EXPECT_TRUE(q.empty());
  }
  EXPECT_TRUE(st.failed.empty());
}

TEST(CanonicalObject, TaskStructurePerEndpoint) {
  auto obj = makeConsensus(1);
  auto tasks = obj.tasks();
  // i-perform and i-output per endpoint, no compute tasks for atomic
  // objects (glob is empty in the Section 5.1 embedding).
  EXPECT_EQ(tasks.size(), 6u);
  int performs = 0, outputs = 0, computes = 0;
  for (const auto& t : tasks) {
    if (t.owner == ioa::TaskOwner::ServicePerform) ++performs;
    if (t.owner == ioa::TaskOwner::ServiceOutput) ++outputs;
    if (t.owner == ioa::TaskOwner::ServiceCompute) ++computes;
  }
  EXPECT_EQ(performs, 3);
  EXPECT_EQ(outputs, 3);
  EXPECT_EQ(computes, 0);
}

TEST(CanonicalObject, InvokePerformRespondCycle) {
  auto obj = makeConsensus(2);
  auto s = obj.initialState();
  // No tasks applicable before an invocation arrives.
  EXPECT_FALSE(obj.enabledAction(*s, TaskId::servicePerform(9, 0)));
  EXPECT_FALSE(obj.enabledAction(*s, TaskId::serviceOutput(9, 0)));

  obj.apply(*s, Action::invoke(0, 9, sym("init", 1)));
  auto perform = obj.enabledAction(*s, TaskId::servicePerform(9, 0));
  ASSERT_TRUE(perform);
  EXPECT_EQ(perform->kind, ioa::ActionKind::Perform);
  obj.apply(*s, *perform);

  auto out = obj.enabledAction(*s, TaskId::serviceOutput(9, 0));
  ASSERT_TRUE(out);
  EXPECT_EQ(out->kind, ioa::ActionKind::Respond);
  EXPECT_EQ(out->payload, sym("decide", 1));
  obj.apply(*s, *out);
  // Buffers drained.
  EXPECT_FALSE(obj.enabledAction(*s, TaskId::serviceOutput(9, 0)));
}

TEST(CanonicalObject, ConsensusFirstPerformWins) {
  auto obj = makeConsensus(2);
  auto s = obj.initialState();
  obj.apply(*s, Action::invoke(0, 9, sym("init", 0)));
  obj.apply(*s, Action::invoke(1, 9, sym("init", 1)));
  // Perform endpoint 1 first: its value is chosen.
  obj.apply(*s, *obj.enabledAction(*s, TaskId::servicePerform(9, 1)));
  obj.apply(*s, *obj.enabledAction(*s, TaskId::servicePerform(9, 0)));
  auto r1 = obj.enabledAction(*s, TaskId::serviceOutput(9, 1));
  auto r0 = obj.enabledAction(*s, TaskId::serviceOutput(9, 0));
  ASSERT_TRUE(r0 && r1);
  EXPECT_EQ(r1->payload, sym("decide", 1));
  EXPECT_EQ(r0->payload, sym("decide", 1));  // agreement at the type level
}

TEST(CanonicalObject, FifoOrderPreservedPerEndpoint) {
  CanonicalAtomicObject reg(types::registerType(), 4, {0, 1}, 1);
  auto s = reg.initialState();
  // Pipelined invocations at the same endpoint: write then read.
  reg.apply(*s, Action::invoke(0, 4, sym("write", 5)));
  reg.apply(*s, Action::invoke(0, 4, sym("read")));
  reg.apply(*s, *reg.enabledAction(*s, TaskId::servicePerform(4, 0)));
  reg.apply(*s, *reg.enabledAction(*s, TaskId::servicePerform(4, 0)));
  // Responses come back in invocation order: ack, then the read value.
  auto r1 = reg.enabledAction(*s, TaskId::serviceOutput(4, 0));
  ASSERT_TRUE(r1);
  EXPECT_EQ(r1->payload, sym("ack"));
  reg.apply(*s, *r1);
  auto r2 = reg.enabledAction(*s, TaskId::serviceOutput(4, 0));
  ASSERT_TRUE(r2);
  EXPECT_EQ(r2->payload, Value(5));
}

TEST(CanonicalObject, PerformOnEmptyBufferThrows) {
  auto obj = makeConsensus(1);
  auto s = obj.initialState();
  EXPECT_THROW(obj.apply(*s, Action::perform(0, 9)), std::logic_error);
}

TEST(CanonicalObject, InvocationFromNonEndpointThrows) {
  CanonicalAtomicObject obj(types::binaryConsensusType(), 9, {0, 1}, 0);
  auto s = obj.initialState();
  // Endpoint 5 is not in J.
  EXPECT_THROW(obj.apply(*s, Action::invoke(5, 9, sym("init", 0))),
               std::logic_error);
}

TEST(CanonicalObject, DeterministicEnabledAction) {
  // At most one action per task per state (Section 3.1).
  auto obj = makeConsensus(2);
  auto s = obj.initialState();
  obj.apply(*s, Action::invoke(0, 9, sym("init", 1)));
  auto a1 = obj.enabledAction(*s, TaskId::servicePerform(9, 0));
  auto a2 = obj.enabledAction(*s, TaskId::servicePerform(9, 0));
  ASSERT_TRUE(a1 && a2);
  EXPECT_EQ(*a1, *a2);
}

TEST(CanonicalObject, StateValueSemantics) {
  auto obj = makeConsensus(2);
  auto s = obj.initialState();
  obj.apply(*s, Action::invoke(0, 9, sym("init", 1)));
  auto copy = s->clone();
  EXPECT_TRUE(s->equals(*copy));
  EXPECT_EQ(s->hash(), copy->hash());
  obj.apply(*s, *obj.enabledAction(*s, TaskId::servicePerform(9, 0)));
  EXPECT_FALSE(s->equals(*copy));
}

TEST(CanonicalObject, ParticipationSignature) {
  auto obj = makeConsensus(1);
  EXPECT_TRUE(obj.participates(Action::invoke(0, 9, sym("init", 0))));
  EXPECT_TRUE(obj.participates(Action::respond(0, 9, Value(0))));
  EXPECT_TRUE(obj.participates(Action::fail(2)));
  EXPECT_FALSE(obj.participates(Action::fail(7)));   // not an endpoint
  EXPECT_FALSE(obj.participates(Action::invoke(0, 8, sym("init", 0))));
  EXPECT_FALSE(obj.participates(Action::envInit(0, Value(1))));
}

TEST(CanonicalObject, WaitFreePredicate) {
  EXPECT_TRUE(makeConsensus(2, 3).isWaitFree());
  EXPECT_TRUE(makeConsensus(5, 3).isWaitFree());
  EXPECT_FALSE(makeConsensus(1, 3).isWaitFree());
}

TEST(CanonicalObject, RejectsBadConstruction) {
  EXPECT_THROW(CanonicalAtomicObject(types::binaryConsensusType(), 1,
                                     std::vector<int>{}, 0),
               std::logic_error);
  EXPECT_THROW(CanonicalAtomicObject(types::binaryConsensusType(), 1,
                                     std::vector<int>{0, 0}, 0),
               std::logic_error);
  EXPECT_THROW(CanonicalAtomicObject(types::binaryConsensusType(), 1,
                                     std::vector<int>{0}, -1),
               std::logic_error);
}

// Appendix B / Theorem 11: the canonical consensus object's responses
// satisfy agreement and validity along any execution we drive by hand.
TEST(CanonicalObject, TheoremElevenAgreementValidity) {
  for (int first = 0; first < 3; ++first) {
    auto obj = makeConsensus(2);
    auto s = obj.initialState();
    const int inputs[3] = {0, 1, 1};
    for (int i = 0; i < 3; ++i) {
      obj.apply(*s, Action::invoke(i, 9, sym("init", inputs[i])));
    }
    // Perform in rotated orders; collect all responses.
    std::vector<Value> decisions;
    for (int k = 0; k < 3; ++k) {
      const int i = (first + k) % 3;
      obj.apply(*s, *obj.enabledAction(*s, TaskId::servicePerform(9, i)));
    }
    for (int i = 0; i < 3; ++i) {
      auto out = obj.enabledAction(*s, TaskId::serviceOutput(9, i));
      ASSERT_TRUE(out);
      decisions.push_back(out->payload.at(1));
    }
    for (const Value& d : decisions) {
      EXPECT_EQ(d, decisions.front());                        // agreement
      EXPECT_TRUE(d == Value(0) || d == Value(1));            // validity
    }
    EXPECT_EQ(decisions.front(), Value(inputs[first]));  // first perform wins
  }
}

}  // namespace
}  // namespace boosting::services
