// Wing-Gong checker: accepts canonical-object histories (clause 2 of the
// "implements" definition, Section 2.1.4) and rejects non-linearizable
// ones; handles pending operations and nondeterministic types.
#include "sim/linearizability.h"

#include <gtest/gtest.h>

#include "processes/relay_consensus.h"
#include "sim/runner.h"
#include "types/builtin_types.h"

namespace boosting::sim {
namespace {

using util::sym;
using util::Value;

Operation op(int endpoint, Value inv, Value resp, std::size_t invAt,
             std::size_t respAt) {
  Operation o;
  o.endpoint = endpoint;
  o.invocation = std::move(inv);
  o.response = std::move(resp);
  o.completed = true;
  o.invokedAt = invAt;
  o.respondedAt = respAt;
  return o;
}

Operation pending(int endpoint, Value inv, std::size_t invAt) {
  Operation o;
  o.endpoint = endpoint;
  o.invocation = std::move(inv);
  o.invokedAt = invAt;
  return o;
}

TEST(Linearizability, EmptyHistoryIsLinearizable) {
  auto r = checkLinearizable(types::registerType(), {});
  EXPECT_TRUE(r.linearizable);
}

TEST(Linearizability, SequentialRegisterHistoryAccepted) {
  // write(5); read -> 5.
  std::vector<Operation> ops = {
      op(0, sym("write", 5), sym("ack"), 0, 1),
      op(1, sym("read"), Value(5), 2, 3),
  };
  EXPECT_TRUE(checkLinearizable(types::registerType(), ops).linearizable);
}

TEST(Linearizability, StaleReadRejected) {
  // write(5) completes before the read is invoked, yet the read returns
  // the initial nil value: no legal linearization.
  std::vector<Operation> ops = {
      op(0, sym("write", 5), sym("ack"), 0, 1),
      op(1, sym("read"), Value::nil(), 2, 3),
  };
  EXPECT_FALSE(checkLinearizable(types::registerType(), ops).linearizable);
}

TEST(Linearizability, ConcurrentReadMayGoEitherWay) {
  // The read overlaps the write, so both nil and 5 are linearizable.
  std::vector<Operation> overlapOld = {
      op(0, sym("write", 5), sym("ack"), 0, 3),
      op(1, sym("read"), Value::nil(), 1, 2),
  };
  std::vector<Operation> overlapNew = {
      op(0, sym("write", 5), sym("ack"), 0, 3),
      op(1, sym("read"), Value(5), 1, 2),
  };
  EXPECT_TRUE(
      checkLinearizable(types::registerType(), overlapOld).linearizable);
  EXPECT_TRUE(
      checkLinearizable(types::registerType(), overlapNew).linearizable);
}

TEST(Linearizability, PendingWriteMayHaveTakenEffect) {
  // The write never responded, but a later read sees its value: the
  // pending operation must be linearizable as having taken effect.
  std::vector<Operation> ops = {
      pending(0, sym("write", 5), 0),
      op(1, sym("read"), Value(5), 1, 2),
  };
  EXPECT_TRUE(checkLinearizable(types::registerType(), ops).linearizable);
}

TEST(Linearizability, PendingWriteMayAlsoBeDropped) {
  std::vector<Operation> ops = {
      pending(0, sym("write", 5), 0),
      op(1, sym("read"), Value::nil(), 1, 2),
  };
  EXPECT_TRUE(checkLinearizable(types::registerType(), ops).linearizable);
}

TEST(Linearizability, ConsensusAgreementEnforced) {
  // Two overlapping inits that both get their own value: not linearizable
  // for the consensus type (someone must adopt the winner).
  std::vector<Operation> bad = {
      op(0, sym("init", 0), sym("decide", 0), 0, 3),
      op(1, sym("init", 1), sym("decide", 1), 1, 2),
  };
  EXPECT_FALSE(
      checkLinearizable(types::binaryConsensusType(), bad).linearizable);
  std::vector<Operation> good = {
      op(0, sym("init", 0), sym("decide", 0), 0, 3),
      op(1, sym("init", 1), sym("decide", 0), 1, 2),
  };
  EXPECT_TRUE(
      checkLinearizable(types::binaryConsensusType(), good).linearizable);
}

TEST(Linearizability, PerEndpointFifoEnforced) {
  // Same endpoint, pipelined: enq(1) then enq(2); a dequeuer sees 2 first.
  // FIFO order of the canonical buffers forbids linearizing enq(2) first.
  std::vector<Operation> ops = {
      op(0, sym("enq", 1), sym("ack"), 0, 4),
      op(0, sym("enq", 2), sym("ack"), 1, 5),
      op(1, sym("deq"), Value(2), 6, 7),
      op(1, sym("deq"), Value(1), 8, 9),
  };
  EXPECT_FALSE(checkLinearizable(types::queueType(), ops).linearizable);
  std::vector<Operation> good = {
      op(0, sym("enq", 1), sym("ack"), 0, 4),
      op(0, sym("enq", 2), sym("ack"), 1, 5),
      op(1, sym("deq"), Value(1), 6, 7),
      op(1, sym("deq"), Value(2), 8, 9),
  };
  EXPECT_TRUE(checkLinearizable(types::queueType(), good).linearizable);
}

TEST(Linearizability, NondeterministicKSetChecked) {
  // Two k=2 proposers may each keep their own value.
  std::vector<Operation> ops = {
      op(0, sym("init", 0), sym("decide", 0), 0, 3),
      op(1, sym("init", 1), sym("decide", 1), 1, 2),
  };
  EXPECT_TRUE(checkLinearizable(types::kSetConsensusType(2), ops).linearizable);
  // But three distinct decisions among three proposers are not allowed.
  std::vector<Operation> bad = {
      op(0, sym("init", 0), sym("decide", 0), 0, 5),
      op(1, sym("init", 1), sym("decide", 1), 1, 6),
      op(2, sym("init", 2), sym("decide", 2), 2, 7),
  };
  EXPECT_FALSE(
      checkLinearizable(types::kSetConsensusType(2), bad).linearizable);
}

TEST(Linearizability, WitnessIsALegalOrder) {
  std::vector<Operation> ops = {
      op(0, sym("write", 5), sym("ack"), 0, 1),
      op(1, sym("read"), Value(5), 2, 3),
  };
  auto r = checkLinearizable(types::registerType(), ops);
  ASSERT_TRUE(r.linearizable);
  ASSERT_EQ(r.witness.size(), 2u);
  EXPECT_EQ(r.witness[0], 0u);  // the write linearizes first
}

TEST(Linearizability, ExtractHistoryMatchesFifo) {
  ioa::Execution exec;
  exec.append(ioa::Action::invoke(0, 7, sym("write", 1)));
  exec.append(ioa::Action::invoke(0, 7, sym("read")));
  exec.append(ioa::Action::respond(0, 7, sym("ack")));
  exec.append(ioa::Action::respond(0, 7, Value(1)));
  auto ops = extractHistory(exec, 7);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(ops[0].completed);
  EXPECT_EQ(ops[0].response, sym("ack"));
  EXPECT_EQ(ops[1].response, Value(1));
}

TEST(Linearizability, ExtractHistoryIgnoresOtherServices) {
  ioa::Execution exec;
  exec.append(ioa::Action::invoke(0, 7, sym("read")));
  exec.append(ioa::Action::invoke(0, 8, sym("read")));
  EXPECT_EQ(extractHistory(exec, 7).size(), 1u);
}

TEST(ImplementsAtomic, AcceptsCanonicalObjectRun) {
  processes::RelaySystemSpec spec;
  spec.processCount = 3;
  spec.objectResilience = 2;
  auto sys = processes::buildRelayConsensusSystem(spec);
  RunConfig cfg;
  cfg.inits = binaryInits(3, 0b110);
  auto r = run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  EXPECT_EQ(checkImplementsAtomic(types::binaryConsensusType(), r.exec,
                                  spec.consensusServiceId),
            "");
}

TEST(ImplementsAtomic, RejectsMalformedHistory) {
  ioa::Execution e;
  e.append(ioa::Action::respond(0, 7, Value(1)));  // spontaneous response
  const std::string verdict =
      checkImplementsAtomic(types::registerType(), e, 7);
  EXPECT_NE(verdict.find("well-formed"), std::string::npos);
}

TEST(ImplementsAtomic, RejectsNonLinearizableHistory) {
  ioa::Execution e;
  e.append(ioa::Action::invoke(0, 7, sym("write", 5)));
  e.append(ioa::Action::respond(0, 7, sym("ack")));
  e.append(ioa::Action::invoke(1, 7, sym("read")));
  e.append(ioa::Action::respond(1, 7, Value::nil()));  // stale read
  const std::string verdict =
      checkImplementsAtomic(types::registerType(), e, 7);
  EXPECT_NE(verdict.find("not linearizable"), std::string::npos);
}

// End-to-end: every trace the canonical consensus object produces under a
// real scheduler is linearizable -- clause 2 of "implements" observed on
// generated executions.
TEST(Linearizability, CanonicalObjectTracesAreLinearizable) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    processes::RelaySystemSpec spec;
    spec.processCount = 3;
    spec.objectResilience = 2;
    auto sys = processes::buildRelayConsensusSystem(spec);
    RunConfig cfg;
    cfg.scheduler = RunConfig::Sched::Random;
    cfg.seed = seed;
    cfg.inits = binaryInits(3, static_cast<unsigned>(seed % 8));
    auto r = run(*sys, cfg);
    ASSERT_TRUE(r.allDecided());
    auto ops = extractHistory(r.exec, spec.consensusServiceId);
    auto lin = checkLinearizable(types::binaryConsensusType(), ops);
    EXPECT_TRUE(lin.linearizable) << "seed " << seed;
  }
}

}  // namespace
}  // namespace boosting::sim
