// Composition of implementations (Section 2.1.4): a whole system wrapped
// as a single service, used by a higher-level implementation.
//
// The headline: wrap the Section-6.3 rotating-coordinator system (built
// from 1-resilient pairwise detectors + registers) as an (n-1)-resilient
// consensus SERVICE; outer relay processes use it exactly like a canonical
// consensus object, its histories are linearizable for the consensus type,
// and it keeps answering under n-1 failures -- the boosted object itself,
// as an artifact.
#include "compose/system_as_service.h"

#include <gtest/gtest.h>

#include "processes/relay_consensus.h"
#include "processes/rotating_consensus.h"
#include "sim/linearizability.h"
#include "sim/properties.h"
#include "sim/runner.h"
#include "types/builtin_types.h"

namespace boosting::compose {
namespace {

using sim::binaryInits;
using sim::RunConfig;
using util::sym;
using util::Value;

constexpr int kWrappedId = 1000;

// Outer system: n relay processes using the wrapped implementation as
// their consensus service.
std::unique_ptr<ioa::System> outerOverWrapped(
    std::shared_ptr<const ioa::System> inner, int n, int resilience,
    bool failureAware) {
  auto outer = std::make_unique<ioa::System>();
  for (int i = 0; i < n; ++i) {
    outer->addProcess(
        std::make_shared<processes::RelayConsensusProcess>(i, kWrappedId));
  }
  auto wrapped = std::make_shared<SystemAsService>(std::move(inner),
                                                   kWrappedId, resilience,
                                                   failureAware);
  outer->addService(wrapped, wrapped->meta());
  return outer;
}

std::shared_ptr<const ioa::System> rotatingInner(int n) {
  processes::RotatingConsensusSpec spec;
  spec.processCount = n;
  return std::shared_ptr<const ioa::System>(
      processes::buildRotatingConsensusSystem(spec));
}

std::shared_ptr<const ioa::System> relayInner(int n, int f) {
  processes::RelaySystemSpec spec;
  spec.processCount = n;
  spec.objectResilience = f;
  spec.addScratchRegister = false;
  return std::shared_ptr<const ioa::System>(
      processes::buildRelayConsensusSystem(spec));
}

TEST(SystemAsService, WrappedRelayAnswersLikeAConsensusObject) {
  auto outer = outerOverWrapped(relayInner(3, 2), 3, 2, false);
  RunConfig cfg;
  cfg.inits = binaryInits(3, 0b011);
  cfg.maxSteps = 400000;
  auto r = sim::run(*outer, cfg);
  ASSERT_TRUE(r.allDecided());
  auto verdict = sim::checkConsensus(r);
  EXPECT_TRUE(verdict) << verdict.detail;
}

TEST(SystemAsService, WrappedRotatingConsensusIsBoostedService) {
  // The wrapped implementation tolerates n-1 failures even though every
  // service inside it is only 1-resilient: the boosting of Section 6.3,
  // packaged as an object.
  const int n = 3;
  auto outer = outerOverWrapped(rotatingInner(n), n, n - 1, true);
  for (unsigned mask = 0; mask < (1u << n); mask += 3) {
    RunConfig cfg;
    cfg.inits = binaryInits(n, mask);
    cfg.maxSteps = 400000;
    auto r = sim::run(*outer, cfg);
    ASSERT_TRUE(r.allDecided()) << "mask " << mask;
    auto verdict = sim::checkConsensus(r);
    EXPECT_TRUE(verdict) << verdict.detail;
  }
}

TEST(SystemAsService, WrappedServiceSurvivesMinorityAndMajorityFailures) {
  const int n = 3;
  auto outer = outerOverWrapped(rotatingInner(n), n, n - 1, true);
  // Fail two of three outer processes: fail_i reaches the inner P_i and
  // its inner services; the wrapped protocol still serves the survivor.
  RunConfig cfg;
  cfg.inits = binaryInits(n, 0b001);
  cfg.failures = {{6, 1}, {14, 2}};
  cfg.maxSteps = 400000;
  auto r = sim::run(*outer, cfg);
  ASSERT_TRUE(r.allDecided());
  EXPECT_EQ(r.decisions.count(0), 1u);
  auto agree = sim::checkAgreement(r);
  EXPECT_TRUE(agree) << agree.detail;
}

TEST(SystemAsService, HistoriesAreLinearizableForConsensus) {
  const int n = 3;
  auto outer = outerOverWrapped(rotatingInner(n), n, n - 1, true);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    RunConfig cfg;
    cfg.scheduler = RunConfig::Sched::Random;
    cfg.seed = seed;
    cfg.inits = binaryInits(n, static_cast<unsigned>(seed % 8));
    cfg.maxSteps = 800000;
    auto r = sim::run(*outer, cfg);
    ASSERT_TRUE(r.allDecided()) << "seed " << seed;
    auto ops = sim::extractHistory(r.exec, kWrappedId);
    auto lin = sim::checkLinearizable(types::binaryConsensusType(), ops);
    EXPECT_TRUE(lin.linearizable) << "seed " << seed;
  }
}

TEST(SystemAsService, MetaReflectsWrapping) {
  auto svc = SystemAsService(rotatingInner(3), kWrappedId, 2, true);
  auto m = svc.meta();
  EXPECT_EQ(m.id, kWrappedId);
  EXPECT_EQ(m.endpoints, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(m.resilience, 2);
  EXPECT_TRUE(m.failureAware);
}

TEST(SystemAsService, TasksCoverInnerTasksAndOutputs) {
  auto inner = rotatingInner(2);
  const std::size_t innerTasks = inner->allTasks().size();
  auto svc = SystemAsService(inner, kWrappedId, 1, true);
  EXPECT_EQ(svc.tasks().size(), innerTasks + 2);
}

TEST(SystemAsService, EachEndpointAnsweredOnce) {
  const int n = 2;
  auto outer = outerOverWrapped(rotatingInner(n), n, n - 1, true);
  RunConfig cfg;
  cfg.inits = binaryInits(n, 0b10);
  cfg.maxSteps = 400000;
  auto r = sim::run(*outer, cfg);
  ASSERT_TRUE(r.allDecided());
  int responsesTo0 = 0;
  for (const ioa::Action& a : r.exec.actions()) {
    if (a.kind == ioa::ActionKind::Respond && a.component == kWrappedId &&
        a.endpoint == 0) {
      ++responsesTo0;
    }
  }
  EXPECT_EQ(responsesTo0, 1);
}

TEST(SystemAsService, RejectsEmptyInner) {
  EXPECT_THROW(SystemAsService(std::make_shared<ioa::System>(), 1, 0, false),
               std::logic_error);
}

}  // namespace
}  // namespace boosting::compose
