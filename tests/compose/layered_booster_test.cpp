// Composition all the way down: the Section-4 set-consensus booster
// running over IMPLEMENTED group services -- each group's consensus object
// is a wrapped two-process test&set construction (Herlihy's
// consensus-number-2 building block), remapped onto its group's endpoints.
//
//   outer:  4 relay processes, groups {0,1} and {2,3}
//   group service g: SystemAsService(TAS-consensus system, offset = 2g)
//
// The composed system solves wait-free 2-set consensus: at most two
// distinct decisions, validity, and termination with up to 3 of 4
// processes failed -- resilience boosted above the 1-resilience of every
// primitive inside, exactly as Section 4 promises, with no canonical
// consensus object anywhere in the stack.
#include <gtest/gtest.h>

#include "compose/system_as_service.h"
#include "processes/relay_consensus.h"
#include "processes/tas_consensus.h"
#include "sim/properties.h"
#include "sim/runner.h"

namespace boosting::compose {
namespace {

using sim::RunConfig;
using util::Value;

std::unique_ptr<ioa::System> layeredBooster() {
  auto outer = std::make_unique<ioa::System>();
  // Group of endpoint i is i / 2; its service id is 1000 + group.
  for (int i = 0; i < 4; ++i) {
    outer->addProcess(std::make_shared<processes::RelayConsensusProcess>(
        i, 1000 + i / 2));
  }
  for (int g = 0; g < 2; ++g) {
    processes::TASConsensusSpec spec;
    spec.policy = services::DummyPolicy::PreferDummy;  // adversarial build
    auto inner = std::shared_ptr<const ioa::System>(
        processes::buildTASConsensusSystem(spec));
    auto wrapped = std::make_shared<SystemAsService>(
        inner, 1000 + g, /*resilience=*/1, /*failureAware=*/false,
        /*endpointOffset=*/2 * g);
    outer->addService(wrapped, wrapped->meta());
  }
  return outer;
}

TEST(LayeredBooster, MetaReflectsRemappedEndpoints) {
  auto sys = layeredBooster();
  EXPECT_EQ(sys->serviceMeta(1000).endpoints, (std::vector<int>{0, 1}));
  EXPECT_EQ(sys->serviceMeta(1001).endpoints, (std::vector<int>{2, 3}));
}

TEST(LayeredBooster, FailRoutesOnlyToTheOwningGroup) {
  auto sys = layeredBooster();
  // fail_3 reaches P3 and the second wrapper only.
  auto participants = sys->participants(ioa::Action::fail(3));
  ASSERT_EQ(participants.size(), 2u);
  EXPECT_EQ(participants[1], sys->slotForService(1001));
}

TEST(LayeredBooster, SolvesTwoSetConsensusFailureFree) {
  auto sys = layeredBooster();
  RunConfig cfg;
  for (int i = 0; i < 4; ++i) cfg.inits.emplace_back(i, Value(i));
  cfg.maxSteps = 200000;
  auto r = sim::run(*sys, cfg);
  ASSERT_TRUE(r.allDecided());
  auto kset = sim::checkKSetAgreement(r, 2);
  EXPECT_TRUE(kset) << kset.detail;
  auto valid = sim::checkValidity(r);
  EXPECT_TRUE(valid) << valid.detail;
  // Group members agree with each other (each group ran consensus).
  EXPECT_EQ(r.decisions.at(0), r.decisions.at(1));
  EXPECT_EQ(r.decisions.at(2), r.decisions.at(3));
}

TEST(LayeredBooster, WaitFreeUnderThreeFailures) {
  for (int survivor = 0; survivor < 4; ++survivor) {
    auto sys = layeredBooster();
    RunConfig cfg;
    for (int i = 0; i < 4; ++i) cfg.inits.emplace_back(i, Value(i));
    std::size_t k = 0;
    for (int i = 0; i < 4; ++i) {
      if (i != survivor) cfg.failures.emplace_back(3 * ++k, i);
    }
    cfg.maxSteps = 200000;
    auto r = sim::run(*sys, cfg);
    ASSERT_TRUE(r.allDecided()) << "survivor " << survivor;
    EXPECT_TRUE(sim::checkKSetAgreement(r, 2));
    EXPECT_TRUE(sim::checkValidity(r));
    EXPECT_EQ(r.decisions.count(survivor), 1u);
  }
}

TEST(LayeredBooster, RandomSchedulesSweep) {
  auto sys = layeredBooster();
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    RunConfig cfg;
    for (int i = 0; i < 4; ++i) {
      cfg.inits.emplace_back(i, Value(static_cast<int>((seed + i) % 3)));
    }
    cfg.scheduler = RunConfig::Sched::Random;
    cfg.seed = seed;
    if (seed % 2 == 1) {
      cfg.failures.emplace_back(seed % 9, static_cast<int>(seed % 4));
    }
    cfg.maxSteps = 200000;
    auto r = sim::run(*sys, cfg);
    ASSERT_TRUE(r.allDecided()) << "seed " << seed;
    EXPECT_TRUE(sim::checkKSetAgreement(r, 2)) << "seed " << seed;
    EXPECT_TRUE(sim::checkValidity(r)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace boosting::compose
