// Failure-oblivious services beyond atomic objects (Section 5.2): the
// totally ordered broadcast service, and consensus built on top of it.
//
// A single bcast invocation produces a delivery at EVERY endpoint -- which
// no sequential type can express -- yet the service never looks at failure
// events, so Theorem 9 applies to it just as Theorem 2 applies to atomic
// objects. This example shows (a) the service's total-order guarantee
// under an adversarial interleaving, and (b) consensus from TOB with a
// failure within the service's resilience.
//
// Build & run:  ./build/examples/totally_ordered_broadcast
#include <cstdio>

#include "processes/tob_consensus.h"
#include "sim/linearizability.h"
#include "sim/properties.h"
#include "sim/runner.h"

using namespace boosting;

int main() {
  const int n = 3;
  processes::TOBConsensusSpec spec;
  spec.processCount = n;
  spec.serviceResilience = 1;
  auto sys = processes::buildTOBConsensusSystem(spec);

  std::printf("consensus from a 1-resilient totally ordered broadcast, "
              "%d processes\n",
              n);

  sim::RunConfig cfg;
  cfg.inits = {{0, util::Value(7)}, {1, util::Value(8)}, {2, util::Value(9)}};
  cfg.failures = {{4, 1}};  // one failure <= f = 1
  cfg.scheduler = sim::RunConfig::Sched::Random;
  cfg.seed = 2026;
  auto r = sim::run(*sys, cfg);

  std::printf("\ndelivery sequences (rcv responses per endpoint):\n");
  for (int i = 0; i < n; ++i) {
    std::printf("  P%d:", i);
    for (const ioa::Action& a : r.exec.actions()) {
      if (a.kind == ioa::ActionKind::Respond && a.endpoint == i &&
          a.payload.tag() == "rcv") {
        std::printf(" %s", a.payload.str().c_str());
      }
    }
    std::printf("\n");
  }

  std::printf("\ndecisions:\n");
  for (const auto& [i, v] : r.decisions) {
    std::printf("  P%d decided %s\n", i, v.str().c_str());
  }

  auto agree = sim::checkAgreement(r);
  auto valid = sim::checkValidity(r);
  auto term = sim::checkModifiedTermination(r);
  std::printf("agreement:   %s\n", agree ? "OK" : agree.detail.c_str());
  std::printf("validity:    %s\n", valid ? "OK" : valid.detail.c_str());
  std::printf("termination: %s\n", term ? "OK" : term.detail.c_str());
  std::printf("\n(the service delivered every ordered message to every "
              "endpoint atomically -- one invocation, many responses: not "
              "an atomic object.)\n");
  return (agree && valid && term) ? 0 : 1;
}
