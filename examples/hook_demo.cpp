// The impossibility pipeline, end to end, on a concrete candidate
// (Theorem 2 mechanized):
//
//   1. candidate: 2 processes relaying through a 0-resilient consensus
//      object, CLAIMED to solve 1-resilient consensus;
//   2. Lemma 4: find a bivalent initialization among alpha_0..alpha_n;
//   3. Lemma 5 / Fig. 3: search G(C) for a hook (Fig. 2);
//   4. Lemma 8: classify the hook endpoints by similarity;
//   5. Lemmas 6/7 (gamma construction): fail f+1 processes, let the
//      silenced services take dummy steps, and exhibit the fair execution
//      in which a correct process never decides.
//
// Build & run:  ./build/examples/hook_demo
#include <cstdio>
#include <fstream>

#include "analysis/adversary.h"
#include "analysis/dot_export.h"
#include "processes/relay_consensus.h"

using namespace boosting;
using analysis::Valence;

int main() {
  processes::RelaySystemSpec spec;
  spec.processCount = 2;
  spec.objectResilience = 0;
  spec.policy = services::DummyPolicy::PreferDummy;  // adversarial services
  auto sys = processes::buildRelayConsensusSystem(spec);

  std::printf("candidate: %d processes, one %d-resilient consensus object, "
              "claimed %d-resilient\n",
              spec.processCount, spec.objectResilience,
              spec.objectResilience + 1);

  analysis::AdversaryConfig cfg;
  cfg.claimedFailures = spec.objectResilience + 1;
  auto report = analysis::analyzeConsensusCandidate(*sys, cfg);

  std::printf("\n-- Lemma 4: canonical initializations --\n");
  for (const auto& init : report.initializations) {
    std::printf("  alpha_%d (%d ones): %s\n", init.onesPrefix,
                init.onesPrefix, analysis::valenceName(init.valence));
  }
  if (report.bivalentInit) {
    std::printf("  bivalent initialization found: alpha_%d\n",
                report.bivalentInit->onesPrefix);
  }

  if (report.hook) {
    std::printf("\n-- Lemma 5: hook (Fig. 2) --\n");
    std::printf("  alpha  : node %u (bivalent)\n", report.hook->alpha);
    std::printf("  e      : %s\n", report.hook->e.str().c_str());
    std::printf("  e'     : %s\n", report.hook->ePrime.str().c_str());
    std::printf("  e(alpha)      -> node %u (%s)\n", report.hook->alpha0,
                analysis::valenceName(report.hook->alpha0Valence));
    std::printf("  e(e'(alpha))  -> node %u (%s)\n", report.hook->alpha1,
                analysis::valenceName(report.hook->alpha1Valence));
    std::printf("\n-- Lemma 8: case analysis --\n");
    std::printf("  %s\n", report.classification.narrative.c_str());
  }

  std::printf("\n-- Verdict --\n  %s\n", report.summary().c_str());
  std::printf("  states explored: %zu\n", report.statesExplored);

  // Render G(C) around the bivalent initialization with the hook in red
  // (Fig. 2, machine-generated): dot -Tsvg hook_graph.dot -o hook_graph.svg
  if (report.bivalentInit && report.hook) {
    analysis::StateGraph g(*sys);
    analysis::ValenceAnalyzer va(g);
    analysis::NodeId init = g.intern(analysis::canonicalInitialization(
        *sys, report.bivalentInit->onesPrefix));
    auto outcome = analysis::findHook(g, va, init);
    if (outcome.hook) {
      analysis::DotOptions dotOpts;
      dotOpts.maxNodes = 120;
      dotOpts.highlightHook = outcome.hook;
      std::ofstream("hook_graph.dot") << analysis::exportDot(g, va, init,
                                                             dotOpts);
      std::printf("  wrote hook_graph.dot (valence-coloured G(C), hook in "
                  "red)\n");
    }
  }

  std::printf("\n-- Counterexample execution (%zu actions, tail) --\n",
              report.witness.size());
  const auto& actions = report.witness.actions();
  const std::size_t start = actions.size() > 24 ? actions.size() - 24 : 0;
  for (std::size_t i = start; i < actions.size(); ++i) {
    std::printf("  %3zu: %s\n", i, actions[i].str().c_str());
  }
  std::printf("  (the tail repeats forever: a fair execution in which the "
              "correct process never decides)\n");

  return report.verdict ==
                 analysis::AdversaryReport::Verdict::TerminationViolation
             ? 0
             : 1;
}
