// Composition of implementations (Section 2.1.4): "an implemented service
// can be seen as a canonical service in a higher-level implementation."
//
// We build the Section-6.3 rotating-coordinator consensus system (whose
// only services are 1-resilient pairwise perfect failure detectors and
// reliable registers), wrap the WHOLE SYSTEM as a single consensus
// service, and let three higher-level relay processes use it exactly like
// a canonical (n-1)-resilient consensus object -- which, per Section 6.3,
// is precisely the resilience boosting that pairwise failure-aware
// services make possible.
//
// The example then kills all but one outer process and shows the wrapped
// service still answering the survivor; finally it checks the wrapped
// service's operation history against the consensus sequential type with
// the Wing-Gong linearizability checker (clause 2 of "implements").
//
// Build & run:  ./build/examples/composed_service
#include <cstdio>

#include "compose/system_as_service.h"
#include "processes/relay_consensus.h"
#include "processes/rotating_consensus.h"
#include "sim/linearizability.h"
#include "sim/properties.h"
#include "sim/runner.h"
#include "types/builtin_types.h"

using namespace boosting;

int main() {
  const int n = 3;
  const int wrappedId = 1000;

  // Inner implementation: consensus from pairwise FDs + registers.
  processes::RotatingConsensusSpec innerSpec;
  innerSpec.processCount = n;
  auto inner = std::shared_ptr<const ioa::System>(
      processes::buildRotatingConsensusSystem(innerSpec));
  std::printf("inner system: %d processes, %d services (pairwise perfect "
              "FDs + EST registers)\n",
              inner->processCount(), inner->serviceCount());

  // Outer system: relay processes over the wrapped service.
  auto outer = std::make_unique<ioa::System>();
  for (int i = 0; i < n; ++i) {
    outer->addProcess(
        std::make_shared<processes::RelayConsensusProcess>(i, wrappedId));
  }
  auto wrapped = std::make_shared<compose::SystemAsService>(
      inner, wrappedId, /*resilience=*/n - 1, /*failureAware=*/true);
  outer->addService(wrapped, wrapped->meta());
  std::printf("outer system: %d relay processes over %s\n\n", n,
              wrapped->name().c_str());

  sim::RunConfig cfg;
  cfg.inits = {{0, util::Value(1)}, {1, util::Value(0)}, {2, util::Value(0)}};
  cfg.failures = {{4, 1}, {11, 2}};  // n-1 failures: the boosted level
  cfg.maxSteps = 500000;
  auto r = sim::run(*outer, cfg);

  for (const auto& [i, v] : r.decisions) {
    std::printf("P%d decided %s%s\n", i, v.str().c_str(),
                r.failed.count(i) ? "  (before failing)" : "");
  }
  auto agree = sim::checkAgreement(r);
  auto valid = sim::checkValidity(r);
  auto term = sim::checkModifiedTermination(r);
  std::printf("agreement:   %s\n", agree ? "OK" : agree.detail.c_str());
  std::printf("validity:    %s\n", valid ? "OK" : valid.detail.c_str());
  std::printf("termination: %s  (%zu of %d outer processes failed)\n",
              term ? "OK" : term.detail.c_str(), r.failed.size(), n);

  auto ops = sim::extractHistory(r.exec, wrappedId);
  auto lin = sim::checkLinearizable(types::binaryConsensusType(), ops);
  std::printf("wrapped-service history (%zu ops): %s\n", ops.size(),
              lin.linearizable ? "linearizable for the consensus type"
                               : "NOT linearizable");
  std::printf("\nthe implemented service IS the service: a consensus object "
              "with resilience %d,\nbuilt from services that are only "
              "1-resilient -- Section 6.3's boosting, packaged.\n",
              n - 1);
  return (agree && valid && term && lin.linearizable) ? 0 : 1;
}
