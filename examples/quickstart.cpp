// Quickstart: build a distributed system from the library's canonical
// pieces, run it under a fair scheduler, and check the consensus
// conditions.
//
//   * 3 processes, each relaying its input to a shared 1-resilient
//     canonical consensus object (Fig. 1 of the paper) and deciding the
//     object's answer;
//   * one failure injected -- within the object's resilience, so every
//     correct process still decides.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "processes/relay_consensus.h"
#include "sim/properties.h"
#include "sim/runner.h"

using namespace boosting;

int main() {
  // A system: P0, P1, P2 + one 1-resilient binary consensus object.
  processes::RelaySystemSpec spec;
  spec.processCount = 3;
  spec.objectResilience = 1;
  auto sys = processes::buildRelayConsensusSystem(spec);

  // Input-first execution: P0 proposes 1, P1 and P2 propose 0; P2 fails
  // after 5 steps (1 failure <= f = 1: the service keeps operating).
  sim::RunConfig cfg;
  cfg.inits = {{0, util::Value(1)}, {1, util::Value(0)}, {2, util::Value(0)}};
  cfg.failures = {{5, 2}};

  sim::RunResult r = sim::run(*sys, cfg);

  std::printf("run finished after %zu locally controlled steps\n", r.steps);
  std::printf("execution trace (external actions):\n");
  for (const ioa::Action& a : r.exec.trace()) {
    std::printf("  %s\n", a.str().c_str());
  }
  for (const auto& [i, v] : r.decisions) {
    std::printf("P%d decided %s\n", i, v.str().c_str());
  }

  auto agreement = sim::checkAgreement(r);
  auto validity = sim::checkValidity(r);
  auto termination = sim::checkModifiedTermination(r);
  std::printf("agreement:   %s\n", agreement ? "OK" : agreement.detail.c_str());
  std::printf("validity:    %s\n", validity ? "OK" : validity.detail.c_str());
  std::printf("termination: %s\n",
              termination ? "OK" : termination.detail.c_str());
  return (agreement && validity && termination) ? 0 : 1;
}
