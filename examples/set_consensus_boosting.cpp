// Section 4: boosting IS possible below consensus.
//
// Wait-free 2-set consensus for n = 6 processes from two wait-free
// 3-process consensus services: we fail n-1 = 5 of the 6 processes and the
// survivor still decides, with at most 2 distinct values decided overall.
// The contrast with Theorem 2 (where ONE failure beyond the services'
// resilience kills termination) is the point of the section.
//
// Build & run:  ./build/examples/set_consensus_boosting
#include <cstdio>

#include "processes/set_consensus_booster.h"
#include "sim/properties.h"
#include "sim/runner.h"

using namespace boosting;

int main() {
  const int n = 6;
  processes::SetConsensusBoosterSpec spec;
  spec.processCount = n;
  spec.groups = 2;  // k = 2, k' = 1: the paper's highlighted instance
  spec.policy = services::DummyPolicy::PreferDummy;  // worst-case services
  auto sys = processes::buildSetConsensusBoosterSystem(spec);

  std::printf("wait-free %d-process 2-set consensus from two wait-free "
              "%d-process consensus services\n",
              n, n / 2);

  // Distinct proposals, and fail everyone except P3, staggered.
  sim::RunConfig cfg;
  for (int i = 0; i < n; ++i) cfg.inits.emplace_back(i, util::Value(i));
  for (int i = 0; i < n; ++i) {
    if (i != 3) {
      cfg.failures.emplace_back(static_cast<std::size_t>(3 * i + 2), i);
    }
  }
  auto r = sim::run(*sys, cfg);

  std::printf("failed processes:");
  for (int i : r.failed) std::printf(" P%d", i);
  std::printf("  (that is %zu of %d -- wait-freedom)\n", r.failed.size(), n);
  for (const auto& [i, v] : r.decisions) {
    std::printf("P%d decided %s%s\n", i, v.str().c_str(),
                r.failed.count(i) ? "  (before failing)" : "");
  }

  auto kset = sim::checkKSetAgreement(r, 2);
  auto validity = sim::checkValidity(r);
  auto term = sim::checkModifiedTermination(r);
  std::printf("2-set agreement: %s\n", kset ? "OK" : kset.detail.c_str());
  std::printf("validity:        %s\n",
              validity ? "OK" : validity.detail.c_str());
  std::printf("termination:     %s\n", term ? "OK" : term.detail.c_str());
  std::printf("\nresilience boosted: services tolerate %d failures each, "
              "the composed system tolerated %zu.\n",
              n / 2 - 1, r.failed.size());
  return (kset && validity && term) ? 0 : 1;
}
