// The boosting frontier, in one run.
//
// The paper's three-way contrast:
//   (1) consensus from f-resilient ATOMIC OBJECTS     -> not boostable (Thm 2)
//   (2) consensus from f-resilient OBLIVIOUS services -> not boostable (Thm 9)
//   (3) consensus from an all-process FAILURE-AWARE
//       service                                       -> not boostable (Thm 10)
//   (4) 2-set consensus from wait-free consensus      -> BOOSTABLE (Sec. 4)
//   (5) consensus from PAIRWISE failure detectors     -> BOOSTABLE (Sec. 6.3)
//
// Rows 1-3 run the adversary engine and print the counterexample verdict;
// rows 4-5 run the constructions under maximal failures and print the
// property verdicts.
//
// Build & run:  ./build/examples/impossibility_frontier
#include <cstdio>

#include "analysis/adversary.h"
#include "processes/relay_consensus.h"
#include "processes/rotating_consensus.h"
#include "processes/set_consensus_booster.h"
#include "processes/tob_consensus.h"
#include "sim/properties.h"
#include "sim/runner.h"

using namespace boosting;

namespace {

void refute(const char* label, const ioa::System& sys, int claimed) {
  analysis::AdversaryConfig cfg;
  cfg.claimedFailures = claimed;
  cfg.exemptFailureAware = true;  // sound for failure-oblivious-only too
  auto report = analysis::analyzeConsensusCandidate(sys, cfg);
  std::printf("  %-46s %s\n", label, report.summary().c_str());
}

}  // namespace

int main() {
  std::printf("== Impossible: the adversary engine refutes each claim ==\n");
  {
    processes::RelaySystemSpec spec;
    spec.processCount = 3;
    spec.objectResilience = 1;
    spec.policy = services::DummyPolicy::PreferDummy;
    auto sys = processes::buildRelayConsensusSystem(spec);
    refute("Thm 2:  1-resilient object, claimed 2-resilient", *sys, 2);
  }
  {
    processes::TOBConsensusSpec spec;
    spec.processCount = 2;
    spec.serviceResilience = 0;
    spec.policy = services::DummyPolicy::PreferDummy;
    auto sys = processes::buildTOBConsensusSystem(spec);
    refute("Thm 9:  0-resilient broadcast, claimed 1-resilient", *sys, 1);
  }
  {
    processes::SingleFDConsensusSpec spec;
    spec.processCount = 2;
    spec.fdResilience = 0;
    spec.policy = services::DummyPolicy::PreferDummy;
    auto sys = processes::buildSingleFDRotatingConsensusSystem(spec);
    refute("Thm 10: 0-resilient all-process FD, claimed 1", *sys, 1);
  }

  std::printf("\n== Possible: the constructions survive maximal failures ==\n");
  {
    processes::SetConsensusBoosterSpec spec;
    spec.processCount = 6;
    spec.groups = 2;
    spec.policy = services::DummyPolicy::PreferDummy;
    auto sys = processes::buildSetConsensusBoosterSystem(spec);
    sim::RunConfig cfg;
    for (int i = 0; i < 6; ++i) cfg.inits.emplace_back(i, util::Value(i));
    for (int i = 0; i < 6; ++i) {
      if (i != 2) cfg.failures.emplace_back(2 * i + 1, i);
    }
    auto r = sim::run(*sys, cfg);
    const bool ok = r.allDecided() &&
                    static_cast<bool>(sim::checkKSetAgreement(r, 2)) &&
                    static_cast<bool>(sim::checkValidity(r));
    std::printf("  %-46s %s (%zu/6 processes failed, %zu decided)\n",
                "Sec 4:  wait-free 2-set from n/2-consensus",
                ok ? "HOLDS" : "VIOLATED", r.failed.size(),
                r.decisions.size());
  }
  {
    processes::RotatingConsensusSpec spec;
    spec.processCount = 4;
    auto sys = processes::buildRotatingConsensusSystem(spec);
    sim::RunConfig cfg;
    cfg.inits = sim::binaryInits(4, 0b0110);
    cfg.failures = {{0, 0}, {20, 1}, {55, 2}};  // n-1 failures
    cfg.maxSteps = 100000;
    auto r = sim::run(*sys, cfg);
    const bool ok = r.allDecided() && static_cast<bool>(sim::checkConsensus(r));
    std::printf("  %-46s %s (%zu/4 processes failed)\n",
                "Sec 6.3: consensus from pairwise 1-resilient FDs",
                ok ? "HOLDS" : "VIOLATED", r.failed.size());
  }
  std::printf("\nThe frontier: consensus cannot cross a service's resilience;"
              "\nweaker problems and richer connection patterns can.\n");
  return 0;
}
