// Section 6.3: boosting IS possible for failure-aware services with
// arbitrary connection patterns.
//
// Part 1 -- the booster: a wait-free 4-process perfect failure detector
// built from 1-resilient 2-process detectors plus registers; we crash two
// processes and watch every survivor's suspect set converge to exactly the
// crashed set (accuracy + completeness).
//
// Part 2 -- the consequence: rotating-coordinator consensus over the
// pairwise detectors tolerates n-1 = 3 failures -- resilience that
// Theorem 10 says would be impossible if every detector had to be
// connected to ALL processes.
//
// Build & run:  ./build/examples/failure_detector_boosting
#include <cstdio>

#include "processes/fd_booster.h"
#include "processes/rotating_consensus.h"
#include "sim/properties.h"
#include "sim/runner.h"

using namespace boosting;

int main() {
  const int n = 4;

  std::printf("== Part 1: wait-free %d-process perfect FD from 1-resilient "
              "2-process FDs ==\n",
              n);
  processes::FDBoosterSpec fdSpec;
  fdSpec.processCount = n;
  auto booster = processes::buildFDBoosterSystem(fdSpec);

  sim::RunConfig cfg;
  cfg.maxSteps = 8000;
  cfg.stopWhenAllDecided = false;
  cfg.failures = {{10, 1}, {60, 3}};
  auto r = sim::run(*booster, cfg);

  for (int i = 0; i < n; ++i) {
    if (r.failed.count(i)) continue;
    // Last suspect output of each survivor.
    util::Value last;
    for (const ioa::Action& a : r.exec.actions()) {
      if (a.kind == ioa::ActionKind::EnvDecide && a.endpoint == i) {
        last = a.payload.at(1);
      }
    }
    std::printf("P%d's final suspect set: %s\n", i, last.str().c_str());
  }
  auto exact = sim::checkFDExactness(r);
  std::printf("accuracy + completeness: %s\n",
              exact ? "OK (outputs == crashed set)" : exact.detail.c_str());

  std::printf("\n== Part 2: consensus for ANY f from pairwise detectors + "
              "registers ==\n");
  processes::RotatingConsensusSpec rotSpec;
  rotSpec.processCount = n;
  auto consensus = processes::buildRotatingConsensusSystem(rotSpec);

  sim::RunConfig cc;
  cc.inits = {{0, util::Value(1)},
              {1, util::Value(0)},
              {2, util::Value(0)},
              {3, util::Value(1)}};
  cc.failures = {{0, 0}, {25, 1}, {70, 2}};  // n-1 = 3 failures
  cc.maxSteps = 60000;
  auto rc = sim::run(*consensus, cc);

  for (const auto& [i, v] : rc.decisions) {
    std::printf("P%d decided %s%s\n", i, v.str().c_str(),
                rc.failed.count(i) ? "  (before failing)" : "");
  }
  auto agree = sim::checkAgreement(rc);
  auto valid = sim::checkValidity(rc);
  auto term = sim::checkModifiedTermination(rc);
  std::printf("agreement:   %s\n", agree ? "OK" : agree.detail.c_str());
  std::printf("validity:    %s\n", valid ? "OK" : valid.detail.c_str());
  std::printf("termination: %s  (with %zu of %d processes failed)\n",
              term ? "OK" : term.detail.c_str(), rc.failed.size(), n);

  return (exact && agree && valid && term) ? 0 : 1;
}
