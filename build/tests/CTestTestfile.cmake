# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[core_tests]=] "/root/repo/build/tests/core_tests")
set_tests_properties([=[core_tests]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[services_tests]=] "/root/repo/build/tests/services_tests")
set_tests_properties([=[services_tests]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[protocols_tests]=] "/root/repo/build/tests/protocols_tests")
set_tests_properties([=[protocols_tests]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[analysis_tests]=] "/root/repo/build/tests/analysis_tests")
set_tests_properties([=[analysis_tests]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[compose_tests]=] "/root/repo/build/tests/compose_tests")
set_tests_properties([=[compose_tests]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_relay]=] "/root/repo/build/tools/boosting_analyze" "--candidate" "relay" "--n" "2" "--f" "0")
set_tests_properties([=[cli_relay]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;78;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_tob]=] "/root/repo/build/tools/boosting_analyze" "--candidate" "tob" "--n" "2" "--f" "0")
set_tests_properties([=[cli_tob]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;80;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_single_fd_brute]=] "/root/repo/build/tools/boosting_analyze" "--candidate" "single-fd" "--n" "2" "--f" "0" "--brute")
set_tests_properties([=[cli_single_fd_brute]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;82;add_test;/root/repo/tests/CMakeLists.txt;0;")
