file(REMOVE_RECURSE
  "CMakeFiles/protocols_tests.dir/protocols/evp_consensus_test.cpp.o"
  "CMakeFiles/protocols_tests.dir/protocols/evp_consensus_test.cpp.o.d"
  "CMakeFiles/protocols_tests.dir/protocols/fd_booster_test.cpp.o"
  "CMakeFiles/protocols_tests.dir/protocols/fd_booster_test.cpp.o.d"
  "CMakeFiles/protocols_tests.dir/protocols/flooding_consensus_test.cpp.o"
  "CMakeFiles/protocols_tests.dir/protocols/flooding_consensus_test.cpp.o.d"
  "CMakeFiles/protocols_tests.dir/protocols/relay_consensus_test.cpp.o"
  "CMakeFiles/protocols_tests.dir/protocols/relay_consensus_test.cpp.o.d"
  "CMakeFiles/protocols_tests.dir/protocols/reliable_broadcast_test.cpp.o"
  "CMakeFiles/protocols_tests.dir/protocols/reliable_broadcast_test.cpp.o.d"
  "CMakeFiles/protocols_tests.dir/protocols/rotating_consensus_test.cpp.o"
  "CMakeFiles/protocols_tests.dir/protocols/rotating_consensus_test.cpp.o.d"
  "CMakeFiles/protocols_tests.dir/protocols/scale_test.cpp.o"
  "CMakeFiles/protocols_tests.dir/protocols/scale_test.cpp.o.d"
  "CMakeFiles/protocols_tests.dir/protocols/set_consensus_kprime_test.cpp.o"
  "CMakeFiles/protocols_tests.dir/protocols/set_consensus_kprime_test.cpp.o.d"
  "CMakeFiles/protocols_tests.dir/protocols/set_consensus_test.cpp.o"
  "CMakeFiles/protocols_tests.dir/protocols/set_consensus_test.cpp.o.d"
  "CMakeFiles/protocols_tests.dir/protocols/tas_consensus_test.cpp.o"
  "CMakeFiles/protocols_tests.dir/protocols/tas_consensus_test.cpp.o.d"
  "CMakeFiles/protocols_tests.dir/protocols/tob_consensus_test.cpp.o"
  "CMakeFiles/protocols_tests.dir/protocols/tob_consensus_test.cpp.o.d"
  "protocols_tests"
  "protocols_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocols_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
