
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocols/evp_consensus_test.cpp" "tests/CMakeFiles/protocols_tests.dir/protocols/evp_consensus_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_tests.dir/protocols/evp_consensus_test.cpp.o.d"
  "/root/repo/tests/protocols/fd_booster_test.cpp" "tests/CMakeFiles/protocols_tests.dir/protocols/fd_booster_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_tests.dir/protocols/fd_booster_test.cpp.o.d"
  "/root/repo/tests/protocols/flooding_consensus_test.cpp" "tests/CMakeFiles/protocols_tests.dir/protocols/flooding_consensus_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_tests.dir/protocols/flooding_consensus_test.cpp.o.d"
  "/root/repo/tests/protocols/relay_consensus_test.cpp" "tests/CMakeFiles/protocols_tests.dir/protocols/relay_consensus_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_tests.dir/protocols/relay_consensus_test.cpp.o.d"
  "/root/repo/tests/protocols/reliable_broadcast_test.cpp" "tests/CMakeFiles/protocols_tests.dir/protocols/reliable_broadcast_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_tests.dir/protocols/reliable_broadcast_test.cpp.o.d"
  "/root/repo/tests/protocols/rotating_consensus_test.cpp" "tests/CMakeFiles/protocols_tests.dir/protocols/rotating_consensus_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_tests.dir/protocols/rotating_consensus_test.cpp.o.d"
  "/root/repo/tests/protocols/scale_test.cpp" "tests/CMakeFiles/protocols_tests.dir/protocols/scale_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_tests.dir/protocols/scale_test.cpp.o.d"
  "/root/repo/tests/protocols/set_consensus_kprime_test.cpp" "tests/CMakeFiles/protocols_tests.dir/protocols/set_consensus_kprime_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_tests.dir/protocols/set_consensus_kprime_test.cpp.o.d"
  "/root/repo/tests/protocols/set_consensus_test.cpp" "tests/CMakeFiles/protocols_tests.dir/protocols/set_consensus_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_tests.dir/protocols/set_consensus_test.cpp.o.d"
  "/root/repo/tests/protocols/tas_consensus_test.cpp" "tests/CMakeFiles/protocols_tests.dir/protocols/tas_consensus_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_tests.dir/protocols/tas_consensus_test.cpp.o.d"
  "/root/repo/tests/protocols/tob_consensus_test.cpp" "tests/CMakeFiles/protocols_tests.dir/protocols/tob_consensus_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_tests.dir/protocols/tob_consensus_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/boosting_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_compose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_processes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_services.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
