
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/action_test.cpp" "tests/CMakeFiles/core_tests.dir/core/action_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/action_test.cpp.o.d"
  "/root/repo/tests/core/contract_test.cpp" "tests/CMakeFiles/core_tests.dir/core/contract_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/contract_test.cpp.o.d"
  "/root/repo/tests/core/execution_test.cpp" "tests/CMakeFiles/core_tests.dir/core/execution_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/execution_test.cpp.o.d"
  "/root/repo/tests/core/lemma1_test.cpp" "tests/CMakeFiles/core_tests.dir/core/lemma1_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/lemma1_test.cpp.o.d"
  "/root/repo/tests/core/properties_test.cpp" "tests/CMakeFiles/core_tests.dir/core/properties_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/properties_test.cpp.o.d"
  "/root/repo/tests/core/rng_test.cpp" "tests/CMakeFiles/core_tests.dir/core/rng_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rng_test.cpp.o.d"
  "/root/repo/tests/core/scheduler_test.cpp" "tests/CMakeFiles/core_tests.dir/core/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/scheduler_test.cpp.o.d"
  "/root/repo/tests/core/sequential_type_test.cpp" "tests/CMakeFiles/core_tests.dir/core/sequential_type_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/sequential_type_test.cpp.o.d"
  "/root/repo/tests/core/system_test.cpp" "tests/CMakeFiles/core_tests.dir/core/system_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/system_test.cpp.o.d"
  "/root/repo/tests/core/trace_io_test.cpp" "tests/CMakeFiles/core_tests.dir/core/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/trace_io_test.cpp.o.d"
  "/root/repo/tests/core/value_test.cpp" "tests/CMakeFiles/core_tests.dir/core/value_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/value_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/boosting_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_compose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_processes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_services.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
