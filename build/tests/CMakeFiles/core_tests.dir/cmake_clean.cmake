file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/action_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/action_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/contract_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/contract_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/execution_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/execution_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/lemma1_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/lemma1_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/properties_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/properties_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/rng_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/rng_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/scheduler_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/scheduler_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/sequential_type_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/sequential_type_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/system_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/system_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/trace_io_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/trace_io_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/value_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/value_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
