file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/adversary_paths_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/adversary_paths_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/adversary_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/adversary_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/bivalence_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/bivalence_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/dot_export_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/dot_export_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/hook_enumeration_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/hook_enumeration_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/hook_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/hook_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/lemma_replay_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/lemma_replay_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/similarity_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/similarity_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/state_graph_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/state_graph_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/termination_search_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/termination_search_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/theorem10_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/theorem10_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/valence_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/valence_test.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
