
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/adversary_paths_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/adversary_paths_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/adversary_paths_test.cpp.o.d"
  "/root/repo/tests/analysis/adversary_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/adversary_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/adversary_test.cpp.o.d"
  "/root/repo/tests/analysis/bivalence_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/bivalence_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/bivalence_test.cpp.o.d"
  "/root/repo/tests/analysis/dot_export_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/dot_export_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/dot_export_test.cpp.o.d"
  "/root/repo/tests/analysis/hook_enumeration_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/hook_enumeration_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/hook_enumeration_test.cpp.o.d"
  "/root/repo/tests/analysis/hook_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/hook_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/hook_test.cpp.o.d"
  "/root/repo/tests/analysis/lemma_replay_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/lemma_replay_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/lemma_replay_test.cpp.o.d"
  "/root/repo/tests/analysis/similarity_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/similarity_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/similarity_test.cpp.o.d"
  "/root/repo/tests/analysis/state_graph_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/state_graph_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/state_graph_test.cpp.o.d"
  "/root/repo/tests/analysis/termination_search_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/termination_search_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/termination_search_test.cpp.o.d"
  "/root/repo/tests/analysis/theorem10_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/theorem10_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/theorem10_test.cpp.o.d"
  "/root/repo/tests/analysis/valence_test.cpp" "tests/CMakeFiles/analysis_tests.dir/analysis/valence_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_tests.dir/analysis/valence_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/boosting_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_processes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_services.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
