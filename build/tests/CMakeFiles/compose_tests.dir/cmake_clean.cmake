file(REMOVE_RECURSE
  "CMakeFiles/compose_tests.dir/compose/layered_booster_test.cpp.o"
  "CMakeFiles/compose_tests.dir/compose/layered_booster_test.cpp.o.d"
  "CMakeFiles/compose_tests.dir/compose/system_as_service_test.cpp.o"
  "CMakeFiles/compose_tests.dir/compose/system_as_service_test.cpp.o.d"
  "compose_tests"
  "compose_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compose_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
