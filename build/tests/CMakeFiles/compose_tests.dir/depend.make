# Empty dependencies file for compose_tests.
# This may be replaced when dependencies are built.
