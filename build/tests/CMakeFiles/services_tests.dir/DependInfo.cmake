
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/services/canonical_object_test.cpp" "tests/CMakeFiles/services_tests.dir/services/canonical_object_test.cpp.o" "gcc" "tests/CMakeFiles/services_tests.dir/services/canonical_object_test.cpp.o.d"
  "/root/repo/tests/services/channel_test.cpp" "tests/CMakeFiles/services_tests.dir/services/channel_test.cpp.o" "gcc" "tests/CMakeFiles/services_tests.dir/services/channel_test.cpp.o.d"
  "/root/repo/tests/services/fd_test.cpp" "tests/CMakeFiles/services_tests.dir/services/fd_test.cpp.o" "gcc" "tests/CMakeFiles/services_tests.dir/services/fd_test.cpp.o.d"
  "/root/repo/tests/services/linearizability_fuzz_test.cpp" "tests/CMakeFiles/services_tests.dir/services/linearizability_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/services_tests.dir/services/linearizability_fuzz_test.cpp.o.d"
  "/root/repo/tests/services/linearizability_test.cpp" "tests/CMakeFiles/services_tests.dir/services/linearizability_test.cpp.o" "gcc" "tests/CMakeFiles/services_tests.dir/services/linearizability_test.cpp.o.d"
  "/root/repo/tests/services/register_test.cpp" "tests/CMakeFiles/services_tests.dir/services/register_test.cpp.o" "gcc" "tests/CMakeFiles/services_tests.dir/services/register_test.cpp.o.d"
  "/root/repo/tests/services/resilience_test.cpp" "tests/CMakeFiles/services_tests.dir/services/resilience_test.cpp.o" "gcc" "tests/CMakeFiles/services_tests.dir/services/resilience_test.cpp.o.d"
  "/root/repo/tests/services/tob_conformance_test.cpp" "tests/CMakeFiles/services_tests.dir/services/tob_conformance_test.cpp.o" "gcc" "tests/CMakeFiles/services_tests.dir/services/tob_conformance_test.cpp.o.d"
  "/root/repo/tests/services/tob_test.cpp" "tests/CMakeFiles/services_tests.dir/services/tob_test.cpp.o" "gcc" "tests/CMakeFiles/services_tests.dir/services/tob_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/boosting_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_processes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_services.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
