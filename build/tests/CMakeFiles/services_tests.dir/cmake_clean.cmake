file(REMOVE_RECURSE
  "CMakeFiles/services_tests.dir/services/canonical_object_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/canonical_object_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/services/channel_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/channel_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/services/fd_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/fd_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/services/linearizability_fuzz_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/linearizability_fuzz_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/services/linearizability_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/linearizability_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/services/register_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/register_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/services/resilience_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/resilience_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/services/tob_conformance_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/tob_conformance_test.cpp.o.d"
  "CMakeFiles/services_tests.dir/services/tob_test.cpp.o"
  "CMakeFiles/services_tests.dir/services/tob_test.cpp.o.d"
  "services_tests"
  "services_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/services_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
