file(REMOVE_RECURSE
  "CMakeFiles/bench_canonical_object.dir/bench_canonical_object.cpp.o"
  "CMakeFiles/bench_canonical_object.dir/bench_canonical_object.cpp.o.d"
  "bench_canonical_object"
  "bench_canonical_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_canonical_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
