# Empty compiler generated dependencies file for bench_canonical_object.
# This may be replaced when dependencies are built.
