file(REMOVE_RECURSE
  "CMakeFiles/bench_set_consensus.dir/bench_set_consensus.cpp.o"
  "CMakeFiles/bench_set_consensus.dir/bench_set_consensus.cpp.o.d"
  "bench_set_consensus"
  "bench_set_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_set_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
