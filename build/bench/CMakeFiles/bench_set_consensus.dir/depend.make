# Empty dependencies file for bench_set_consensus.
# This may be replaced when dependencies are built.
