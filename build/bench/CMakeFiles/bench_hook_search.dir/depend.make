# Empty dependencies file for bench_hook_search.
# This may be replaced when dependencies are built.
