file(REMOVE_RECURSE
  "CMakeFiles/bench_hook_search.dir/bench_hook_search.cpp.o"
  "CMakeFiles/bench_hook_search.dir/bench_hook_search.cpp.o.d"
  "bench_hook_search"
  "bench_hook_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hook_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
