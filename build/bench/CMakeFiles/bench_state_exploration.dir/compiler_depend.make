# Empty compiler generated dependencies file for bench_state_exploration.
# This may be replaced when dependencies are built.
