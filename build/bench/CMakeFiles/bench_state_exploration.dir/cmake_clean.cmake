file(REMOVE_RECURSE
  "CMakeFiles/bench_state_exploration.dir/bench_state_exploration.cpp.o"
  "CMakeFiles/bench_state_exploration.dir/bench_state_exploration.cpp.o.d"
  "bench_state_exploration"
  "bench_state_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
