# Empty compiler generated dependencies file for bench_fd_boosting.
# This may be replaced when dependencies are built.
