file(REMOVE_RECURSE
  "CMakeFiles/bench_fd_boosting.dir/bench_fd_boosting.cpp.o"
  "CMakeFiles/bench_fd_boosting.dir/bench_fd_boosting.cpp.o.d"
  "bench_fd_boosting"
  "bench_fd_boosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fd_boosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
