# Empty compiler generated dependencies file for bench_tob.
# This may be replaced when dependencies are built.
