file(REMOVE_RECURSE
  "CMakeFiles/bench_tob.dir/bench_tob.cpp.o"
  "CMakeFiles/bench_tob.dir/bench_tob.cpp.o.d"
  "bench_tob"
  "bench_tob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
