# Empty dependencies file for bench_bivalence.
# This may be replaced when dependencies are built.
