file(REMOVE_RECURSE
  "CMakeFiles/bench_bivalence.dir/bench_bivalence.cpp.o"
  "CMakeFiles/bench_bivalence.dir/bench_bivalence.cpp.o.d"
  "bench_bivalence"
  "bench_bivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
