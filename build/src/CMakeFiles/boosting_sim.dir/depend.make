# Empty dependencies file for boosting_sim.
# This may be replaced when dependencies are built.
