file(REMOVE_RECURSE
  "CMakeFiles/boosting_sim.dir/sim/linearizability.cpp.o"
  "CMakeFiles/boosting_sim.dir/sim/linearizability.cpp.o.d"
  "CMakeFiles/boosting_sim.dir/sim/properties.cpp.o"
  "CMakeFiles/boosting_sim.dir/sim/properties.cpp.o.d"
  "CMakeFiles/boosting_sim.dir/sim/runner.cpp.o"
  "CMakeFiles/boosting_sim.dir/sim/runner.cpp.o.d"
  "CMakeFiles/boosting_sim.dir/sim/trace_io.cpp.o"
  "CMakeFiles/boosting_sim.dir/sim/trace_io.cpp.o.d"
  "libboosting_sim.a"
  "libboosting_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
