file(REMOVE_RECURSE
  "libboosting_sim.a"
)
