file(REMOVE_RECURSE
  "libboosting_types.a"
)
