# Empty compiler generated dependencies file for boosting_types.
# This may be replaced when dependencies are built.
