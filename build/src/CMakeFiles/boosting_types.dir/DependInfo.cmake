
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/builtin_types.cpp" "src/CMakeFiles/boosting_types.dir/types/builtin_types.cpp.o" "gcc" "src/CMakeFiles/boosting_types.dir/types/builtin_types.cpp.o.d"
  "/root/repo/src/types/channel_type.cpp" "src/CMakeFiles/boosting_types.dir/types/channel_type.cpp.o" "gcc" "src/CMakeFiles/boosting_types.dir/types/channel_type.cpp.o.d"
  "/root/repo/src/types/fd_types.cpp" "src/CMakeFiles/boosting_types.dir/types/fd_types.cpp.o" "gcc" "src/CMakeFiles/boosting_types.dir/types/fd_types.cpp.o.d"
  "/root/repo/src/types/sequential_type.cpp" "src/CMakeFiles/boosting_types.dir/types/sequential_type.cpp.o" "gcc" "src/CMakeFiles/boosting_types.dir/types/sequential_type.cpp.o.d"
  "/root/repo/src/types/service_type.cpp" "src/CMakeFiles/boosting_types.dir/types/service_type.cpp.o" "gcc" "src/CMakeFiles/boosting_types.dir/types/service_type.cpp.o.d"
  "/root/repo/src/types/tob_type.cpp" "src/CMakeFiles/boosting_types.dir/types/tob_type.cpp.o" "gcc" "src/CMakeFiles/boosting_types.dir/types/tob_type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/boosting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
