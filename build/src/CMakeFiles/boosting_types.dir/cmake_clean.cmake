file(REMOVE_RECURSE
  "CMakeFiles/boosting_types.dir/types/builtin_types.cpp.o"
  "CMakeFiles/boosting_types.dir/types/builtin_types.cpp.o.d"
  "CMakeFiles/boosting_types.dir/types/channel_type.cpp.o"
  "CMakeFiles/boosting_types.dir/types/channel_type.cpp.o.d"
  "CMakeFiles/boosting_types.dir/types/fd_types.cpp.o"
  "CMakeFiles/boosting_types.dir/types/fd_types.cpp.o.d"
  "CMakeFiles/boosting_types.dir/types/sequential_type.cpp.o"
  "CMakeFiles/boosting_types.dir/types/sequential_type.cpp.o.d"
  "CMakeFiles/boosting_types.dir/types/service_type.cpp.o"
  "CMakeFiles/boosting_types.dir/types/service_type.cpp.o.d"
  "CMakeFiles/boosting_types.dir/types/tob_type.cpp.o"
  "CMakeFiles/boosting_types.dir/types/tob_type.cpp.o.d"
  "libboosting_types.a"
  "libboosting_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
