
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/canonical_atomic.cpp" "src/CMakeFiles/boosting_services.dir/services/canonical_atomic.cpp.o" "gcc" "src/CMakeFiles/boosting_services.dir/services/canonical_atomic.cpp.o.d"
  "/root/repo/src/services/canonical_general.cpp" "src/CMakeFiles/boosting_services.dir/services/canonical_general.cpp.o" "gcc" "src/CMakeFiles/boosting_services.dir/services/canonical_general.cpp.o.d"
  "/root/repo/src/services/canonical_oblivious.cpp" "src/CMakeFiles/boosting_services.dir/services/canonical_oblivious.cpp.o" "gcc" "src/CMakeFiles/boosting_services.dir/services/canonical_oblivious.cpp.o.d"
  "/root/repo/src/services/register.cpp" "src/CMakeFiles/boosting_services.dir/services/register.cpp.o" "gcc" "src/CMakeFiles/boosting_services.dir/services/register.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/boosting_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
