# Empty dependencies file for boosting_services.
# This may be replaced when dependencies are built.
