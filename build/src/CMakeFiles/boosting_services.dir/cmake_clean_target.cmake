file(REMOVE_RECURSE
  "libboosting_services.a"
)
