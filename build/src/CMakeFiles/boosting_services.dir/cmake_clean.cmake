file(REMOVE_RECURSE
  "CMakeFiles/boosting_services.dir/services/canonical_atomic.cpp.o"
  "CMakeFiles/boosting_services.dir/services/canonical_atomic.cpp.o.d"
  "CMakeFiles/boosting_services.dir/services/canonical_general.cpp.o"
  "CMakeFiles/boosting_services.dir/services/canonical_general.cpp.o.d"
  "CMakeFiles/boosting_services.dir/services/canonical_oblivious.cpp.o"
  "CMakeFiles/boosting_services.dir/services/canonical_oblivious.cpp.o.d"
  "CMakeFiles/boosting_services.dir/services/register.cpp.o"
  "CMakeFiles/boosting_services.dir/services/register.cpp.o.d"
  "libboosting_services.a"
  "libboosting_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
