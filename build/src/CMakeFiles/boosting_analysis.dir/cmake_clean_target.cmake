file(REMOVE_RECURSE
  "libboosting_analysis.a"
)
