file(REMOVE_RECURSE
  "CMakeFiles/boosting_analysis.dir/analysis/adversary.cpp.o"
  "CMakeFiles/boosting_analysis.dir/analysis/adversary.cpp.o.d"
  "CMakeFiles/boosting_analysis.dir/analysis/bivalence.cpp.o"
  "CMakeFiles/boosting_analysis.dir/analysis/bivalence.cpp.o.d"
  "CMakeFiles/boosting_analysis.dir/analysis/dot_export.cpp.o"
  "CMakeFiles/boosting_analysis.dir/analysis/dot_export.cpp.o.d"
  "CMakeFiles/boosting_analysis.dir/analysis/hook.cpp.o"
  "CMakeFiles/boosting_analysis.dir/analysis/hook.cpp.o.d"
  "CMakeFiles/boosting_analysis.dir/analysis/lemma_replay.cpp.o"
  "CMakeFiles/boosting_analysis.dir/analysis/lemma_replay.cpp.o.d"
  "CMakeFiles/boosting_analysis.dir/analysis/similarity.cpp.o"
  "CMakeFiles/boosting_analysis.dir/analysis/similarity.cpp.o.d"
  "CMakeFiles/boosting_analysis.dir/analysis/state_graph.cpp.o"
  "CMakeFiles/boosting_analysis.dir/analysis/state_graph.cpp.o.d"
  "CMakeFiles/boosting_analysis.dir/analysis/valence.cpp.o"
  "CMakeFiles/boosting_analysis.dir/analysis/valence.cpp.o.d"
  "libboosting_analysis.a"
  "libboosting_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
