
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/adversary.cpp" "src/CMakeFiles/boosting_analysis.dir/analysis/adversary.cpp.o" "gcc" "src/CMakeFiles/boosting_analysis.dir/analysis/adversary.cpp.o.d"
  "/root/repo/src/analysis/bivalence.cpp" "src/CMakeFiles/boosting_analysis.dir/analysis/bivalence.cpp.o" "gcc" "src/CMakeFiles/boosting_analysis.dir/analysis/bivalence.cpp.o.d"
  "/root/repo/src/analysis/dot_export.cpp" "src/CMakeFiles/boosting_analysis.dir/analysis/dot_export.cpp.o" "gcc" "src/CMakeFiles/boosting_analysis.dir/analysis/dot_export.cpp.o.d"
  "/root/repo/src/analysis/hook.cpp" "src/CMakeFiles/boosting_analysis.dir/analysis/hook.cpp.o" "gcc" "src/CMakeFiles/boosting_analysis.dir/analysis/hook.cpp.o.d"
  "/root/repo/src/analysis/lemma_replay.cpp" "src/CMakeFiles/boosting_analysis.dir/analysis/lemma_replay.cpp.o" "gcc" "src/CMakeFiles/boosting_analysis.dir/analysis/lemma_replay.cpp.o.d"
  "/root/repo/src/analysis/similarity.cpp" "src/CMakeFiles/boosting_analysis.dir/analysis/similarity.cpp.o" "gcc" "src/CMakeFiles/boosting_analysis.dir/analysis/similarity.cpp.o.d"
  "/root/repo/src/analysis/state_graph.cpp" "src/CMakeFiles/boosting_analysis.dir/analysis/state_graph.cpp.o" "gcc" "src/CMakeFiles/boosting_analysis.dir/analysis/state_graph.cpp.o.d"
  "/root/repo/src/analysis/valence.cpp" "src/CMakeFiles/boosting_analysis.dir/analysis/valence.cpp.o" "gcc" "src/CMakeFiles/boosting_analysis.dir/analysis/valence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/boosting_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_processes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_services.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
