# Empty compiler generated dependencies file for boosting_analysis.
# This may be replaced when dependencies are built.
