
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ioa/action.cpp" "src/CMakeFiles/boosting_ioa.dir/ioa/action.cpp.o" "gcc" "src/CMakeFiles/boosting_ioa.dir/ioa/action.cpp.o.d"
  "/root/repo/src/ioa/automaton.cpp" "src/CMakeFiles/boosting_ioa.dir/ioa/automaton.cpp.o" "gcc" "src/CMakeFiles/boosting_ioa.dir/ioa/automaton.cpp.o.d"
  "/root/repo/src/ioa/execution.cpp" "src/CMakeFiles/boosting_ioa.dir/ioa/execution.cpp.o" "gcc" "src/CMakeFiles/boosting_ioa.dir/ioa/execution.cpp.o.d"
  "/root/repo/src/ioa/scheduler.cpp" "src/CMakeFiles/boosting_ioa.dir/ioa/scheduler.cpp.o" "gcc" "src/CMakeFiles/boosting_ioa.dir/ioa/scheduler.cpp.o.d"
  "/root/repo/src/ioa/system.cpp" "src/CMakeFiles/boosting_ioa.dir/ioa/system.cpp.o" "gcc" "src/CMakeFiles/boosting_ioa.dir/ioa/system.cpp.o.d"
  "/root/repo/src/ioa/task.cpp" "src/CMakeFiles/boosting_ioa.dir/ioa/task.cpp.o" "gcc" "src/CMakeFiles/boosting_ioa.dir/ioa/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/boosting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
