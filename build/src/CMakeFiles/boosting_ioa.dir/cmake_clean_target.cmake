file(REMOVE_RECURSE
  "libboosting_ioa.a"
)
