# Empty dependencies file for boosting_ioa.
# This may be replaced when dependencies are built.
