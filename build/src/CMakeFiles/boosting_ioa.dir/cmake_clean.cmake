file(REMOVE_RECURSE
  "CMakeFiles/boosting_ioa.dir/ioa/action.cpp.o"
  "CMakeFiles/boosting_ioa.dir/ioa/action.cpp.o.d"
  "CMakeFiles/boosting_ioa.dir/ioa/automaton.cpp.o"
  "CMakeFiles/boosting_ioa.dir/ioa/automaton.cpp.o.d"
  "CMakeFiles/boosting_ioa.dir/ioa/execution.cpp.o"
  "CMakeFiles/boosting_ioa.dir/ioa/execution.cpp.o.d"
  "CMakeFiles/boosting_ioa.dir/ioa/scheduler.cpp.o"
  "CMakeFiles/boosting_ioa.dir/ioa/scheduler.cpp.o.d"
  "CMakeFiles/boosting_ioa.dir/ioa/system.cpp.o"
  "CMakeFiles/boosting_ioa.dir/ioa/system.cpp.o.d"
  "CMakeFiles/boosting_ioa.dir/ioa/task.cpp.o"
  "CMakeFiles/boosting_ioa.dir/ioa/task.cpp.o.d"
  "libboosting_ioa.a"
  "libboosting_ioa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_ioa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
