file(REMOVE_RECURSE
  "libboosting_processes.a"
)
