# Empty dependencies file for boosting_processes.
# This may be replaced when dependencies are built.
