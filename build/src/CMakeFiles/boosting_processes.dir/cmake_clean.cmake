file(REMOVE_RECURSE
  "CMakeFiles/boosting_processes.dir/processes/evp_consensus.cpp.o"
  "CMakeFiles/boosting_processes.dir/processes/evp_consensus.cpp.o.d"
  "CMakeFiles/boosting_processes.dir/processes/fd_booster.cpp.o"
  "CMakeFiles/boosting_processes.dir/processes/fd_booster.cpp.o.d"
  "CMakeFiles/boosting_processes.dir/processes/flooding_consensus.cpp.o"
  "CMakeFiles/boosting_processes.dir/processes/flooding_consensus.cpp.o.d"
  "CMakeFiles/boosting_processes.dir/processes/process.cpp.o"
  "CMakeFiles/boosting_processes.dir/processes/process.cpp.o.d"
  "CMakeFiles/boosting_processes.dir/processes/relay_consensus.cpp.o"
  "CMakeFiles/boosting_processes.dir/processes/relay_consensus.cpp.o.d"
  "CMakeFiles/boosting_processes.dir/processes/reliable_broadcast.cpp.o"
  "CMakeFiles/boosting_processes.dir/processes/reliable_broadcast.cpp.o.d"
  "CMakeFiles/boosting_processes.dir/processes/rotating_consensus.cpp.o"
  "CMakeFiles/boosting_processes.dir/processes/rotating_consensus.cpp.o.d"
  "CMakeFiles/boosting_processes.dir/processes/script_client.cpp.o"
  "CMakeFiles/boosting_processes.dir/processes/script_client.cpp.o.d"
  "CMakeFiles/boosting_processes.dir/processes/set_consensus_booster.cpp.o"
  "CMakeFiles/boosting_processes.dir/processes/set_consensus_booster.cpp.o.d"
  "CMakeFiles/boosting_processes.dir/processes/tas_consensus.cpp.o"
  "CMakeFiles/boosting_processes.dir/processes/tas_consensus.cpp.o.d"
  "CMakeFiles/boosting_processes.dir/processes/tob_consensus.cpp.o"
  "CMakeFiles/boosting_processes.dir/processes/tob_consensus.cpp.o.d"
  "libboosting_processes.a"
  "libboosting_processes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
