
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/processes/evp_consensus.cpp" "src/CMakeFiles/boosting_processes.dir/processes/evp_consensus.cpp.o" "gcc" "src/CMakeFiles/boosting_processes.dir/processes/evp_consensus.cpp.o.d"
  "/root/repo/src/processes/fd_booster.cpp" "src/CMakeFiles/boosting_processes.dir/processes/fd_booster.cpp.o" "gcc" "src/CMakeFiles/boosting_processes.dir/processes/fd_booster.cpp.o.d"
  "/root/repo/src/processes/flooding_consensus.cpp" "src/CMakeFiles/boosting_processes.dir/processes/flooding_consensus.cpp.o" "gcc" "src/CMakeFiles/boosting_processes.dir/processes/flooding_consensus.cpp.o.d"
  "/root/repo/src/processes/process.cpp" "src/CMakeFiles/boosting_processes.dir/processes/process.cpp.o" "gcc" "src/CMakeFiles/boosting_processes.dir/processes/process.cpp.o.d"
  "/root/repo/src/processes/relay_consensus.cpp" "src/CMakeFiles/boosting_processes.dir/processes/relay_consensus.cpp.o" "gcc" "src/CMakeFiles/boosting_processes.dir/processes/relay_consensus.cpp.o.d"
  "/root/repo/src/processes/reliable_broadcast.cpp" "src/CMakeFiles/boosting_processes.dir/processes/reliable_broadcast.cpp.o" "gcc" "src/CMakeFiles/boosting_processes.dir/processes/reliable_broadcast.cpp.o.d"
  "/root/repo/src/processes/rotating_consensus.cpp" "src/CMakeFiles/boosting_processes.dir/processes/rotating_consensus.cpp.o" "gcc" "src/CMakeFiles/boosting_processes.dir/processes/rotating_consensus.cpp.o.d"
  "/root/repo/src/processes/script_client.cpp" "src/CMakeFiles/boosting_processes.dir/processes/script_client.cpp.o" "gcc" "src/CMakeFiles/boosting_processes.dir/processes/script_client.cpp.o.d"
  "/root/repo/src/processes/set_consensus_booster.cpp" "src/CMakeFiles/boosting_processes.dir/processes/set_consensus_booster.cpp.o" "gcc" "src/CMakeFiles/boosting_processes.dir/processes/set_consensus_booster.cpp.o.d"
  "/root/repo/src/processes/tas_consensus.cpp" "src/CMakeFiles/boosting_processes.dir/processes/tas_consensus.cpp.o" "gcc" "src/CMakeFiles/boosting_processes.dir/processes/tas_consensus.cpp.o.d"
  "/root/repo/src/processes/tob_consensus.cpp" "src/CMakeFiles/boosting_processes.dir/processes/tob_consensus.cpp.o" "gcc" "src/CMakeFiles/boosting_processes.dir/processes/tob_consensus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/boosting_services.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
