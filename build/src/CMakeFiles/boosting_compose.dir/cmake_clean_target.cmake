file(REMOVE_RECURSE
  "libboosting_compose.a"
)
