file(REMOVE_RECURSE
  "CMakeFiles/boosting_compose.dir/compose/system_as_service.cpp.o"
  "CMakeFiles/boosting_compose.dir/compose/system_as_service.cpp.o.d"
  "libboosting_compose.a"
  "libboosting_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
