# Empty dependencies file for boosting_compose.
# This may be replaced when dependencies are built.
