file(REMOVE_RECURSE
  "libboosting_util.a"
)
