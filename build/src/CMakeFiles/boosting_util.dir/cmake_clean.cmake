file(REMOVE_RECURSE
  "CMakeFiles/boosting_util.dir/util/rng.cpp.o"
  "CMakeFiles/boosting_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/boosting_util.dir/util/value.cpp.o"
  "CMakeFiles/boosting_util.dir/util/value.cpp.o.d"
  "libboosting_util.a"
  "libboosting_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
