# Empty dependencies file for boosting_util.
# This may be replaced when dependencies are built.
