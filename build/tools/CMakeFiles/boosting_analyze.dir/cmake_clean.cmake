file(REMOVE_RECURSE
  "CMakeFiles/boosting_analyze.dir/boosting_analyze.cpp.o"
  "CMakeFiles/boosting_analyze.dir/boosting_analyze.cpp.o.d"
  "boosting_analyze"
  "boosting_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boosting_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
