# Empty dependencies file for boosting_analyze.
# This may be replaced when dependencies are built.
