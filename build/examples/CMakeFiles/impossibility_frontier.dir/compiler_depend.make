# Empty compiler generated dependencies file for impossibility_frontier.
# This may be replaced when dependencies are built.
