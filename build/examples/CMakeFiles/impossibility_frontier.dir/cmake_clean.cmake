file(REMOVE_RECURSE
  "CMakeFiles/impossibility_frontier.dir/impossibility_frontier.cpp.o"
  "CMakeFiles/impossibility_frontier.dir/impossibility_frontier.cpp.o.d"
  "impossibility_frontier"
  "impossibility_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impossibility_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
