# Empty compiler generated dependencies file for totally_ordered_broadcast.
# This may be replaced when dependencies are built.
