file(REMOVE_RECURSE
  "CMakeFiles/totally_ordered_broadcast.dir/totally_ordered_broadcast.cpp.o"
  "CMakeFiles/totally_ordered_broadcast.dir/totally_ordered_broadcast.cpp.o.d"
  "totally_ordered_broadcast"
  "totally_ordered_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/totally_ordered_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
