file(REMOVE_RECURSE
  "CMakeFiles/composed_service.dir/composed_service.cpp.o"
  "CMakeFiles/composed_service.dir/composed_service.cpp.o.d"
  "composed_service"
  "composed_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composed_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
