# Empty compiler generated dependencies file for composed_service.
# This may be replaced when dependencies are built.
