# Empty dependencies file for set_consensus_boosting.
# This may be replaced when dependencies are built.
