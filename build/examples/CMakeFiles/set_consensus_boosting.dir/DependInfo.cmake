
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/set_consensus_boosting.cpp" "examples/CMakeFiles/set_consensus_boosting.dir/set_consensus_boosting.cpp.o" "gcc" "examples/CMakeFiles/set_consensus_boosting.dir/set_consensus_boosting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/boosting_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_compose.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_processes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_services.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_ioa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/boosting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
