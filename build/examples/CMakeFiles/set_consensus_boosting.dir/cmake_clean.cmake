file(REMOVE_RECURSE
  "CMakeFiles/set_consensus_boosting.dir/set_consensus_boosting.cpp.o"
  "CMakeFiles/set_consensus_boosting.dir/set_consensus_boosting.cpp.o.d"
  "set_consensus_boosting"
  "set_consensus_boosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_consensus_boosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
