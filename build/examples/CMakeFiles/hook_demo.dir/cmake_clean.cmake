file(REMOVE_RECURSE
  "CMakeFiles/hook_demo.dir/hook_demo.cpp.o"
  "CMakeFiles/hook_demo.dir/hook_demo.cpp.o.d"
  "hook_demo"
  "hook_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hook_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
