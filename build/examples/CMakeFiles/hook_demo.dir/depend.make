# Empty dependencies file for hook_demo.
# This may be replaced when dependencies are built.
