# Empty dependencies file for failure_detector_boosting.
# This may be replaced when dependencies are built.
