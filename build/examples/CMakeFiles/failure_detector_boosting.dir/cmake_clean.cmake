file(REMOVE_RECURSE
  "CMakeFiles/failure_detector_boosting.dir/failure_detector_boosting.cpp.o"
  "CMakeFiles/failure_detector_boosting.dir/failure_detector_boosting.cpp.o.d"
  "failure_detector_boosting"
  "failure_detector_boosting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_detector_boosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
